//! Back-ends: lowering IR to machine code per ISA.
//!
//! The two back-ends share the label-resolution logic but differ where
//! the ISAs differ: `X86ish` is two-address (ALU ops are rewritten
//! with moves, commuting where legal), `Arm32ish` lowers three-address
//! ALU ops directly. All registers must be physical by this point —
//! the `RegisterAllocating` front-end runs its allocator first.

use igjit_machine::{encode_instr, AluOp, Cond, Isa, MInstr, Reg, TrampolineKind};
use igjit_mutate::{armed, ops as mutops};

use crate::ir::{Ir, LabelId, VReg};
use crate::CompileError;

/// Inverts a condition code (the `invert-jcc` mutation).
fn invert_cc(cc: Cond) -> Cond {
    match cc {
        Cond::Eq => Cond::Ne,
        Cond::Ne => Cond::Eq,
        Cond::Lt => Cond::Ge,
        Cond::Ge => Cond::Lt,
        Cond::Le => Cond::Gt,
        Cond::Gt => Cond::Le,
        Cond::Ov => Cond::NoOv,
        Cond::NoOv => Cond::Ov,
    }
}

fn phys(v: VReg) -> Result<Reg, CompileError> {
    v.as_phys().ok_or(CompileError::Backend(format!(
        "virtual register v{} reached the backend unallocated",
        v.0
    )))
}

fn is_commutative(op: AluOp) -> bool {
    matches!(op, AluOp::Add | AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Mul)
}

/// Expands one IR ALU op into machine instructions respecting the
/// ISA's addressing constraints.
fn lower_alu(
    isa: Isa,
    op: AluOp,
    dst: Reg,
    a: Reg,
    b: Reg,
    out: &mut Vec<MInstr>,
) -> Result<(), CompileError> {
    if !isa.two_address() || dst == a {
        out.push(MInstr::AluReg { op, dst, a: if isa.two_address() { dst } else { a }, b });
        return Ok(());
    }
    if dst == b {
        if is_commutative(op) {
            out.push(MInstr::AluReg { op, dst, a: dst, b: a });
            return Ok(());
        }
        return Err(CompileError::Backend(format!(
            "two-address {op:?} with dst == b is unencodable on {isa:?}"
        )));
    }
    if !armed(mutops::DROP_TWO_ADDRESS_MOV_FIXUP) {
        out.push(MInstr::MovReg { dst, src: a });
    }
    out.push(MInstr::AluReg { op, dst, a: dst, b });
    Ok(())
}

/// Sizes of control-flow instructions (needed before offsets are
/// known).
fn jump_len(isa: Isa, conditional: bool) -> usize {
    match isa {
        Isa::X86ish => {
            if conditional {
                6
            } else {
                5
            }
        }
        Isa::Arm32ish => 8,
    }
}

/// Byte position of the displacement field within an encoded jump.
fn jump_patch_offset(isa: Isa, conditional: bool) -> usize {
    match isa {
        Isa::X86ish => {
            if conditional {
                2
            } else {
                1
            }
        }
        Isa::Arm32ish => 4,
    }
}

/// Lowers and encodes an IR sequence for `isa`.
pub fn lower(ir: &[Ir], isa: Isa) -> Result<Vec<u8>, CompileError> {
    let mut bytes: Vec<u8> = Vec::new();
    let mut label_pos: Vec<Option<usize>> = Vec::new();
    // (patch byte offset, end-of-instruction offset, label)
    let mut fixups: Vec<(usize, usize, LabelId)> = Vec::new();

    let note_label = |label: LabelId, pos: Option<usize>, table: &mut Vec<Option<usize>>| {
        let i = usize::from(label.0);
        if table.len() <= i {
            table.resize(i + 1, None);
        }
        if let Some(p) = pos {
            table[i] = Some(p);
        }
    };

    for op in ir {
        let mut ms: Vec<MInstr> = Vec::new();
        match *op {
            Ir::Label(l) => {
                note_label(l, Some(bytes.len()), &mut label_pos);
            }
            Ir::MovImm { dst, imm } => ms.push(MInstr::MovImm { dst: phys(dst)?, imm }),
            Ir::MovReg { dst, src } => {
                let (dst, src) = (phys(dst)?, phys(src)?);
                if dst != src || armed(mutops::DROP_MOV_ELISION) {
                    ms.push(MInstr::MovReg { dst, src });
                }
            }
            Ir::Load { dst, base, off } => {
                ms.push(MInstr::Load { dst: phys(dst)?, base: phys(base)?, off })
            }
            Ir::Store { src, base, off } => {
                ms.push(MInstr::Store { src: phys(src)?, base: phys(base)?, off })
            }
            Ir::Push { src } => ms.push(MInstr::Push { src: phys(src)? }),
            Ir::Pop { dst } => ms.push(MInstr::PopR { dst: phys(dst)? }),
            Ir::Alu { op, dst, a, b } => {
                lower_alu(isa, op, phys(dst)?, phys(a)?, phys(b)?, &mut ms)?
            }
            Ir::AluImm { op, dst, a, imm } => {
                let (dst, a) = (phys(dst)?, phys(a)?);
                if isa.two_address() && dst != a {
                    if !armed(mutops::DROP_ALUIMM_MOV_FIXUP) {
                        ms.push(MInstr::MovReg { dst, src: a });
                    }
                    ms.push(MInstr::AluImm { op, dst, a: dst, imm });
                } else {
                    ms.push(MInstr::AluImm {
                        op,
                        dst,
                        a: if isa.two_address() { dst } else { a },
                        imm,
                    });
                }
            }
            Ir::Cmp { a, b } => ms.push(MInstr::Cmp { a: phys(a)?, b: phys(b)? }),
            Ir::CmpImm { a, imm } => ms.push(MInstr::CmpImm { a: phys(a)?, imm }),
            Ir::Jump(l) => {
                let len = jump_len(isa, false);
                let patch = bytes.len() + jump_patch_offset(isa, false);
                let end = bytes.len() + len;
                fixups.push((patch, end, l));
                note_label(l, None, &mut label_pos);
                ms.push(MInstr::Jmp { off: 0 });
            }
            Ir::JumpCc(cc, l) => {
                let len = jump_len(isa, true);
                let patch = bytes.len() + jump_patch_offset(isa, true);
                let end = bytes.len() + len;
                fixups.push((patch, end, l));
                note_label(l, None, &mut label_pos);
                let cc = if armed(mutops::INVERT_JCC) { invert_cc(cc) } else { cc };
                ms.push(MInstr::JmpCc { cc, off: 0 });
            }
            Ir::Send { selector_id } => {
                ms.push(MInstr::CallTramp { kind: TrampolineKind::Send, payload: selector_id })
            }
            Ir::AllocFloat { dst } => ms.push(MInstr::CallTramp {
                kind: TrampolineKind::AllocFloat,
                payload: u32::from(phys(dst)?.0),
            }),
            Ir::AllocObject { reg, class, format } => {
                let payload =
                    u32::from(phys(reg)?.0) | ((class & 0xfff) << 8) | ((format & 0xf) << 20);
                ms.push(MInstr::CallTramp { kind: TrampolineKind::AllocObject, payload })
            }
            Ir::Ret => ms.push(MInstr::Ret),
            Ir::Stop(code) => ms.push(MInstr::Brk { code }),
            Ir::FLoad { fd, base, off } => {
                ms.push(MInstr::FLoad { fd, base: phys(base)?, off })
            }
            Ir::FAlu { op, fd, fa, fb } => ms.push(MInstr::FAlu { op, fd, fa, fb }),
            Ir::FCmp { fa, fb } => ms.push(MInstr::FCmp { fa, fb }),
            Ir::FToIntChecked { dst, fs } => {
                ms.push(MInstr::FToIntChecked { dst: phys(dst)?, fs })
            }
            Ir::FExponent { dst, fs } => ms.push(MInstr::FExponent { dst: phys(dst)?, fs }),
            Ir::IntToF { fd, src } => ms.push(MInstr::IntToF { fd, src: phys(src)? }),
            Ir::Nop => ms.push(MInstr::Nop),
        }
        for m in ms {
            encode_instr(m, isa, &mut bytes)
                .map_err(|e| CompileError::Backend(e.to_string()))?;
        }
    }

    for (patch, end, label) in fixups {
        let pos = label_pos
            .get(usize::from(label.0))
            .copied()
            .flatten()
            .ok_or_else(|| CompileError::Backend(format!("unbound label L{}", label.0)))?;
        let mut disp = pos as i64 - end as i64;
        if armed(mutops::JUMP_DISP_OFF_BY_ONE) {
            disp += 1;
        }
        let disp = i32::try_from(disp)
            .map_err(|_| CompileError::Backend("jump displacement overflow".into()))?;
        bytes[patch..patch + 4].copy_from_slice(&disp.to_le_bytes());
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use igjit_heap::ObjectMemory;
    use igjit_machine::{Cond, Machine, MachineConfig, MachineOutcome};

    fn run(ir: &[Ir], isa: Isa) -> (MachineOutcome, Vec<u32>) {
        let code = lower(ir, isa).unwrap();
        let mut mem = ObjectMemory::new();
        let mut m = Machine::new(&mut mem, isa, &code);
        let out = m.run(MachineConfig::default());
        let regs: Vec<u32> = (0..isa.reg_count()).map(|i| m.reg(Reg(i))).collect();
        (out, regs)
    }

    fn p(r: u8) -> VReg {
        VReg::phys(Reg(r))
    }

    #[test]
    fn forward_and_backward_jumps_resolve() {
        for isa in [Isa::X86ish, Isa::Arm32ish] {
            let l_end = LabelId(0);
            let l_loop = LabelId(1);
            let ir = vec![
                Ir::MovImm { dst: p(0), imm: 0 },
                Ir::Label(l_loop),
                Ir::AluImm { op: AluOp::Add, dst: p(0), a: p(0), imm: 1 },
                Ir::CmpImm { a: p(0), imm: 5 },
                Ir::JumpCc(Cond::Ge, l_end),
                Ir::Jump(l_loop),
                Ir::Label(l_end),
                Ir::Ret,
            ];
            let (out, regs) = run(&ir, isa);
            assert_eq!(out, MachineOutcome::ReturnedToCaller, "{isa:?}");
            assert_eq!(regs[0], 5, "{isa:?}");
        }
    }

    #[test]
    fn three_address_alu_works_on_both_isas() {
        // dst, a, b all distinct — x86 needs a mov fixup.
        for isa in [Isa::X86ish, Isa::Arm32ish] {
            let ir = vec![
                Ir::MovImm { dst: p(1), imm: 30 },
                Ir::MovImm { dst: p(2), imm: 12 },
                Ir::Alu { op: AluOp::Add, dst: p(0), a: p(1), b: p(2) },
                Ir::Ret,
            ];
            let (out, regs) = run(&ir, isa);
            assert_eq!(out, MachineOutcome::ReturnedToCaller);
            assert_eq!(regs[0], 42, "{isa:?}");
            assert_eq!(regs[1], 30, "{isa:?}: operand a preserved");
        }
    }

    #[test]
    fn commuted_two_address_alu() {
        // dst == b, commutative: x86 backend must commute.
        for isa in [Isa::X86ish, Isa::Arm32ish] {
            let ir = vec![
                Ir::MovImm { dst: p(0), imm: 30 },
                Ir::MovImm { dst: p(1), imm: 12 },
                Ir::Alu { op: AluOp::Add, dst: p(1), a: p(0), b: p(1) },
                Ir::Ret,
            ];
            let (out, regs) = run(&ir, isa);
            assert_eq!(out, MachineOutcome::ReturnedToCaller);
            assert_eq!(regs[1], 42, "{isa:?}");
        }
    }

    #[test]
    fn non_commutative_dst_eq_b_is_rejected_on_x86() {
        let ir = vec![Ir::Alu { op: AluOp::Sub, dst: p(1), a: p(0), b: p(1) }, Ir::Ret];
        assert!(matches!(lower(&ir, Isa::X86ish), Err(CompileError::Backend(_))));
        assert!(lower(&ir, Isa::Arm32ish).is_ok());
    }

    #[test]
    fn virtual_registers_are_rejected() {
        let ir = vec![Ir::MovImm { dst: VReg(40), imm: 1 }];
        assert!(matches!(lower(&ir, Isa::X86ish), Err(CompileError::Backend(_))));
    }

    #[test]
    fn unbound_labels_are_rejected() {
        let ir = vec![Ir::Jump(LabelId(3))];
        assert!(matches!(lower(&ir, Isa::X86ish), Err(CompileError::Backend(_))));
    }

    #[test]
    fn send_halts_with_selector() {
        let ir = vec![Ir::Send { selector_id: 9 }];
        let (out, _) = run(&ir, Isa::Arm32ish);
        assert_eq!(out, MachineOutcome::Send { selector_id: 9 });
    }
}
