//! The bytecode front-ends.
//!
//! One generator serves all three tiers, differing by
//! [`CompilerOptions`] exactly as the Cogit tiers differ (§4.1):
//! `RegisterAllocatingCogit` extends `StackToRegisterMappingCogit`
//! extends the common Cogit. The **semantic divergences between the
//! tiers are real**, not simulated: the SimpleStack tier genuinely
//! compiles every arithmetic bytecode to a send, and no tier inlines
//! the Float fast path the interpreter has — which is precisely the
//! paper's *optimisation difference* defect family.
//!
//! Compilation follows the §4.2 test schema: preamble (frame pointer,
//! temp materialisation, spill reserve), `genPushLiteral` for each
//! operand-stack input, the instruction IR, exit-specific epilogues
//! (`Stop` breakpoints, sends, returns).

use igjit_bytecode::{Instruction, SpecialSelector};
use igjit_heap::{ClassIndex, Oop, HEADER_WORDS};
use igjit_machine::{AluOp, Cond, Isa, Reg};
use igjit_mutate::{armed, ops as mutops};

use crate::backend::lower;
use crate::convention::Convention;
use crate::ir::{Ir, LabelId, VReg, MUST_BE_BOOLEAN_SELECTOR};
use crate::regalloc::{allocate, SPILL_BYTES};
use crate::{stops, CompileError, CompiledCode};

/// Which front-end tier compiles the test.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CompilerKind {
    /// Push/pop bytecodes map 1:1 to machine pushes/pops; **no**
    /// static type prediction at all.
    SimpleStackBased,
    /// Parse-time stack; inlines SmallInteger (but not Float)
    /// arithmetic; in production for over a decade.
    StackToRegister,
    /// StackToRegister plus a linear-scan register allocator
    /// (experimental).
    RegisterAllocating,
}

impl CompilerKind {
    /// The tier's options.
    pub fn options(self) -> CompilerOptions {
        match self {
            CompilerKind::SimpleStackBased => CompilerOptions {
                inline_smallint_arith: false,
                inline_quick_sends: true,
                parse_time_stack: false,
                use_vregs: false,
            },
            CompilerKind::StackToRegister => CompilerOptions {
                inline_smallint_arith: true,
                inline_quick_sends: true,
                parse_time_stack: true,
                use_vregs: false,
            },
            CompilerKind::RegisterAllocating => CompilerOptions {
                inline_smallint_arith: true,
                inline_quick_sends: true,
                parse_time_stack: true,
                use_vregs: true,
            },
        }
    }

    /// Display name matching the paper's Table 2 rows.
    pub fn name(self) -> &'static str {
        match self {
            CompilerKind::SimpleStackBased => "Simple Stack BC Compiler",
            CompilerKind::StackToRegister => "Stack-to-Register BC Compiler",
            CompilerKind::RegisterAllocating => "Linear-Scan Allocator BC Compiler",
        }
    }

    /// All three tiers.
    pub const ALL: [CompilerKind; 3] = [
        CompilerKind::SimpleStackBased,
        CompilerKind::StackToRegister,
        CompilerKind::RegisterAllocating,
    ];
}

/// Tier-defining switches.
#[derive(Clone, Copy, Debug)]
pub struct CompilerOptions {
    /// Inline the SmallInteger fast paths of arithmetic bytecodes
    /// (static type prediction; the Float path is **never** inlined by
    /// any tier — the interpreter inlines it, hence the differences).
    pub inline_smallint_arith: bool,
    /// Inline the `at:`/`at:put:`/`size` quick paths.
    pub inline_quick_sends: bool,
    /// Defer pushes on a parse-time stack (StackToRegister+).
    pub parse_time_stack: bool,
    /// Emit virtual registers and run linear scan.
    pub use_vregs: bool,
}

/// Everything a bytecode instruction test embeds at compile time
/// (§4.2: the concrete frame values become `genPushLiteral`s).
#[derive(Clone, Debug)]
pub struct BytecodeTestInput<'a> {
    /// The instruction under test.
    pub instruction: Instruction,
    /// Operand-stack inputs, bottom first.
    pub operand_stack: &'a [Oop],
    /// Temp values the preamble materializes.
    pub temps: &'a [Oop],
    /// Method literals (selectors, constants) referenced by index.
    pub literals: &'a [Oop],
    /// Canonical `nil` of the target heap.
    pub nil: Oop,
    /// Canonical `true`.
    pub true_obj: Oop,
    /// Canonical `false`.
    pub false_obj: Oop,
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum Entry {
    Imm(u32),
    R(VReg),
    OnMachineStack,
}

struct Gen<'a> {
    opts: CompilerOptions,
    conv: Convention,
    input: &'a BytecodeTestInput<'a>,
    ir: Vec<Ir>,
    next_label: u16,
    next_vreg: u16,
    free_regs: Vec<Reg>,
    sim: Vec<Entry>,
    taken_label: Option<LabelId>,
}

const BODY_OFF: i16 = (HEADER_WORDS * 4) as i16;
const SIZE_OFF: i16 = 4;

/// Logical negation of a condition code (the `flip-compare-cond`
/// mutation).
fn negate_cond(cc: Cond) -> Cond {
    match cc {
        Cond::Eq => Cond::Ne,
        Cond::Ne => Cond::Eq,
        Cond::Lt => Cond::Ge,
        Cond::Ge => Cond::Lt,
        Cond::Le => Cond::Gt,
        Cond::Gt => Cond::Le,
        Cond::Ov => Cond::NoOv,
        Cond::NoOv => Cond::Ov,
    }
}

impl<'a> Gen<'a> {
    fn new(opts: CompilerOptions, input: &'a BytecodeTestInput<'a>, isa: Isa) -> Gen<'a> {
        Gen {
            opts,
            conv: Convention::for_isa(isa),
            input,
            ir: Vec::new(),
            next_label: 0,
            next_vreg: VReg::FIRST_VIRTUAL,
            // The scratch register (R4) is reserved for transients and
            // excluded from the parse-stack pool.
            free_regs: vec![Reg(5), Reg(3), Reg(2), Reg(1)],
            sim: Vec::new(),
            taken_label: None,
        }
    }

    fn label(&mut self) -> LabelId {
        let l = LabelId(self.next_label);
        self.next_label += 1;
        l
    }

    fn bind(&mut self, l: LabelId) {
        self.ir.push(Ir::Label(l));
    }

    /// A register for a value that stays live on the parse stack.
    fn fresh(&mut self) -> VReg {
        if self.opts.use_vregs {
            let v = VReg(self.next_vreg);
            self.next_vreg += 1;
            return v;
        }
        if self.free_regs.is_empty() {
            self.flush_sim();
        }
        let r = self.free_regs.pop().expect("flush refills the pool");
        VReg::phys(r)
    }

    /// Returns pool registers that no parse-stack entry references any
    /// more — called at instruction boundaries, where consumed
    /// operands' registers are definitely dead (sequence compilation).
    fn recycle_regs(&mut self) {
        if self.opts.use_vregs {
            return;
        }
        for r in [Reg(1), Reg(2), Reg(3), Reg(5)] {
            let live = self
                .sim
                .iter()
                .any(|e| matches!(e, Entry::R(v) if v.as_phys() == Some(r)));
            if !live && !self.free_regs.contains(&r) {
                self.free_regs.push(r);
            }
        }
    }

    fn fp(&self) -> VReg {
        VReg::phys(self.conv.fp)
    }

    fn receiver(&self) -> VReg {
        VReg::phys(self.conv.receiver)
    }

    /// Spills every parse-stack entry to the machine stack.
    fn flush_sim(&mut self) {
        for i in 0..self.sim.len() {
            match self.sim[i] {
                Entry::Imm(imm) => {
                    let t = if self.opts.use_vregs {
                        let v = VReg(self.next_vreg);
                        self.next_vreg += 1;
                        v
                    } else {
                        VReg::phys(self.conv.scratch)
                    };
                    self.ir.push(Ir::MovImm { dst: t, imm });
                    self.ir.push(Ir::Push { src: t });
                }
                Entry::R(v) => {
                    self.ir.push(Ir::Push { src: v });
                    if let Some(r) = v.as_phys() {
                        if !self.free_regs.contains(&r) && r.0 >= 1 && r.0 <= 5 {
                            self.free_regs.push(r);
                        }
                    }
                }
                Entry::OnMachineStack => {}
            }
            self.sim[i] = Entry::OnMachineStack;
        }
    }

    /// Pushes a compile-time constant (`genPushLiteral`, §4.2).
    fn push_imm(&mut self, imm: u32) {
        if self.opts.parse_time_stack {
            self.sim.push(Entry::Imm(imm));
        } else {
            let t = self.fresh_transient();
            self.ir.push(Ir::MovImm { dst: t, imm });
            self.ir.push(Ir::Push { src: t });
            self.sim.push(Entry::OnMachineStack);
        }
    }

    /// A register that is consumed immediately (safe to reuse).
    fn fresh_transient(&mut self) -> VReg {
        if self.opts.use_vregs {
            let v = VReg(self.next_vreg);
            self.next_vreg += 1;
            v
        } else {
            VReg::phys(self.conv.scratch)
        }
    }

    /// Pushes a register value.
    fn push_reg(&mut self, v: VReg) {
        if self.opts.parse_time_stack {
            self.sim.push(Entry::R(v));
        } else {
            self.ir.push(Ir::Push { src: v });
            self.sim.push(Entry::OnMachineStack);
        }
    }

    /// Pops the top value into a register.
    fn pop_value(&mut self) -> VReg {
        match self.sim.pop() {
            Some(Entry::R(v)) => v,
            Some(Entry::Imm(imm)) => {
                let v = self.fresh();
                self.ir.push(Ir::MovImm { dst: v, imm });
                v
            }
            Some(Entry::OnMachineStack) | None => {
                // Values under test always exist (paths needing more
                // were filtered as InvalidFrame); popping an empty sim
                // stack means the value is on the machine stack.
                let v = self.fresh();
                self.ir.push(Ir::Pop { dst: v });
                v
            }
        }
    }

    /// Jumps to `slow` unless `v` is a tagged SmallInteger.
    fn check_small_int(&mut self, v: VReg, slow: LabelId) {
        let t = self.fresh_transient();
        self.ir.push(Ir::AluImm { op: AluOp::And, dst: t, a: v, imm: 1 });
        self.ir.push(Ir::JumpCc(Cond::Eq, slow)); // low bit clear → pointer
    }

    /// Jumps to `slow` when `v` *is* a tagged SmallInteger.
    fn check_pointer(&mut self, v: VReg, slow: LabelId) {
        let t = self.fresh_transient();
        self.ir.push(Ir::AluImm { op: AluOp::And, dst: t, a: v, imm: 1 });
        self.ir.push(Ir::JumpCc(Cond::Ne, slow));
    }

    /// Jumps to `slow` unless `v`'s class index equals `class`.
    fn check_class(&mut self, v: VReg, class: ClassIndex, slow: LabelId) {
        let t = self.fresh_transient();
        self.ir.push(Ir::Load { dst: t, base: v, off: 0 });
        self.ir.push(Ir::AluImm { op: AluOp::And, dst: t, a: t, imm: 0x00ff_ffff });
        self.ir.push(Ir::CmpImm { a: t, imm: class.value() });
        self.ir.push(Ir::JumpCc(Cond::Ne, slow));
    }

    /// Marshals receiver and args into the convention registers via
    /// the machine stack (clobber-safe) and emits the send.
    fn send(&mut self, receiver: VReg, args: &[VReg], selector_id: u32) {
        self.ir.push(Ir::Push { src: receiver });
        for &a in args {
            self.ir.push(Ir::Push { src: a });
        }
        for i in (0..args.len()).rev() {
            self.ir.push(Ir::Pop { dst: VReg::phys(self.conv.arg(i)) });
        }
        self.ir.push(Ir::Pop { dst: VReg::phys(self.conv.receiver) });
        self.ir.push(Ir::Send { selector_id });
    }

    fn send_special(&mut self, receiver: VReg, args: &[VReg], sel: SpecialSelector) {
        self.send(receiver, args, sel.index());
    }

    /// Saves the slow path's operands on the machine stack (receiver
    /// first) so inline fast paths may clobber their registers freely
    /// — the way Cog spills around inlined primitives.
    fn save_operands(&mut self, regs: &[VReg]) {
        for &r in regs {
            self.ir.push(Ir::Push { src: r });
        }
    }

    /// Drops `n` saved operands on the success path. Clobbers flags,
    /// so call it before the final flag-producing op of the path.
    fn drop_saved(&mut self, n: u32) {
        let sp = VReg::phys(self.conv.sp);
        self.ir.push(Ir::AluImm { op: AluOp::Add, dst: sp, a: sp, imm: 4 * n });
    }

    /// Slow-path entry: restores receiver + `nargs` args from the
    /// saves (pushed receiver-first) and performs the send.
    fn slow_send(&mut self, nargs: usize, selector_id: u32) {
        for i in (0..nargs).rev() {
            self.ir.push(Ir::Pop { dst: VReg::phys(self.conv.arg(i)) });
        }
        self.ir.push(Ir::Pop { dst: VReg::phys(self.conv.receiver) });
        self.ir.push(Ir::Send { selector_id });
    }

    /// Pushes a boolean result selected by the current flags.
    fn push_bool(&mut self, cc: Cond) {
        let res = self.fresh();
        let ltrue = self.label();
        let lend = self.label();
        self.ir.push(Ir::JumpCc(cc, ltrue));
        self.ir.push(Ir::MovImm { dst: res, imm: self.input.false_obj.0 });
        self.ir.push(Ir::Jump(lend));
        self.bind(ltrue);
        self.ir.push(Ir::MovImm { dst: res, imm: self.input.true_obj.0 });
        self.bind(lend);
        self.push_reg(res);
    }

    fn temp_off(&self, n: u8) -> i16 {
        let bias = if armed(mutops::TEMP_OFFSET_OFF_BY_ONE) { 0 } else { 1 };
        -(4 * (i32::from(n) + bias)) as i16
    }

    fn literal_oop(&self, n: u8) -> Oop {
        self.input.literals.get(usize::from(n)).copied().unwrap_or(self.input.nil)
    }

    fn retag(&mut self, v: VReg, overflow_to: Option<LabelId>) {
        self.ir.push(Ir::AluImm { op: AluOp::Shl, dst: v, a: v, imm: 1 });
        if let Some(slow) = overflow_to {
            self.ir.push(Ir::JumpCc(Cond::Ov, slow));
        }
        if !armed(mutops::DROP_RETAG_TAG_BIT) {
            self.ir.push(Ir::AluImm { op: AluOp::Or, dst: v, a: v, imm: 1 });
        }
    }

    fn untag(&mut self, dst: VReg, src: VReg) {
        let sh = if armed(mutops::UNTAG_SHIFT_OFF_BY_ONE) { 2 } else { 1 };
        self.ir.push(Ir::AluImm { op: AluOp::Sar, dst, a: src, imm: sh });
    }

    // ------------------------------------------------------------------

    fn gen(&mut self, instr: Instruction) -> Result<(), CompileError> {
        use Instruction as I;
        match instr {
            I::PushReceiverVariable(n) | I::PushReceiverVariableLong(n) => {
                let v = self.fresh();
                let rcvr = self.receiver();
                let body = if armed(mutops::RECEIVER_VAR_OFFSET_SKIPS_HEADER) { 0 } else { BODY_OFF };
                self.ir.push(Ir::Load {
                    dst: v,
                    base: rcvr,
                    off: body + 4 * i16::from(n),
                });
                self.push_reg(v);
            }
            I::PushTemp(n) | I::PushTempLong(n) => {
                let v = self.fresh();
                let fp = self.fp();
                self.ir.push(Ir::Load { dst: v, base: fp, off: self.temp_off(n) });
                self.push_reg(v);
            }
            I::PushLiteralConstant(n) | I::PushLiteralLong(n) => {
                let lit = self.literal_oop(n);
                self.push_imm(lit.0);
            }
            I::PushLiteralVariable(n) => {
                let assoc = self.literal_oop(n);
                let b = self.fresh();
                self.ir.push(Ir::MovImm { dst: b, imm: assoc.0 });
                self.ir.push(Ir::Load { dst: b, base: b, off: BODY_OFF + 4 });
                self.push_reg(b);
            }
            I::PushReceiver => {
                let r = self.receiver();
                self.push_reg(r);
            }
            I::PushTrue => self.push_imm(self.input.true_obj.0),
            I::PushFalse => self.push_imm(self.input.false_obj.0),
            I::PushNil => self.push_imm(self.input.nil.0),
            I::PushZero => self.push_imm(Oop::from_small_int(0).0),
            I::PushOne => self.push_imm(Oop::from_small_int(1).0),
            I::PushMinusOne => self.push_imm(Oop::from_small_int(-1).0),
            I::PushTwo => self.push_imm(Oop::from_small_int(2).0),
            I::PushInteger(v) => self.push_imm(Oop::from_small_int(i64::from(v)).0),
            I::PushThisContext => {
                return Err(CompileError::Unsupported("stack-frame reification"))
            }

            I::Dup => {
                if self.opts.parse_time_stack {
                    match self.sim.last().copied() {
                        Some(Entry::OnMachineStack) | None => {
                            let v = self.pop_value();
                            self.push_reg(v);
                            self.push_reg(v);
                        }
                        Some(e) => self.sim.push(e),
                    }
                } else {
                    let v = self.pop_value();
                    self.push_reg(v);
                    self.push_reg(v);
                }
            }
            I::Pop => {
                if matches!(self.sim.last(), Some(Entry::OnMachineStack)) {
                    let t = self.fresh_transient();
                    self.ir.push(Ir::Pop { dst: t });
                    self.sim.pop();
                } else {
                    self.sim.pop();
                }
            }

            I::PopIntoTemp(n) => {
                let v = self.pop_value();
                let fp = self.fp();
                self.ir.push(Ir::Store { src: v, base: fp, off: self.temp_off(n) });
            }
            I::StoreTemp(n) | I::StoreTempLong(n) => {
                let v = self.pop_value();
                let fp = self.fp();
                self.ir.push(Ir::Store { src: v, base: fp, off: self.temp_off(n) });
                self.push_reg(v);
            }
            I::PopIntoReceiverVariable(n) => {
                let v = self.pop_value();
                let rcvr = self.receiver();
                self.ir.push(Ir::Store {
                    src: v,
                    base: rcvr,
                    off: BODY_OFF + 4 * i16::from(n),
                });
            }
            I::StoreReceiverVariableLong(n) => {
                let v = self.pop_value();
                let rcvr = self.receiver();
                self.ir.push(Ir::Store {
                    src: v,
                    base: rcvr,
                    off: BODY_OFF + 4 * i16::from(n),
                });
                self.push_reg(v);
            }

            I::Add => self.gen_arith(AluOp::Add, SpecialSelector::Plus),
            I::Subtract => self.gen_arith(AluOp::Sub, SpecialSelector::Minus),
            I::Multiply => self.gen_arith(AluOp::Mul, SpecialSelector::Times),
            I::Divide => self.gen_divide(),
            I::Modulo => self.gen_mod_like(true),
            I::IntegerDivide => self.gen_mod_like(false),
            I::LessThan => self.gen_compare(Cond::Lt, SpecialSelector::LessThan),
            I::GreaterThan => self.gen_compare(Cond::Gt, SpecialSelector::GreaterThan),
            I::LessOrEqual => self.gen_compare(Cond::Le, SpecialSelector::LessOrEqual),
            I::GreaterOrEqual => self.gen_compare(Cond::Ge, SpecialSelector::GreaterOrEqual),
            I::Equal => self.gen_compare(Cond::Eq, SpecialSelector::Equal),
            I::NotEqual => self.gen_compare(Cond::Ne, SpecialSelector::NotEqual),
            I::IdentityEqual => {
                let arg = self.pop_value();
                let rcvr = self.pop_value();
                self.ir.push(Ir::Cmp { a: rcvr, b: arg });
                self.push_bool(Cond::Eq);
            }
            I::BitAnd => self.gen_bitop(AluOp::And, SpecialSelector::BitAnd),
            I::BitOr => self.gen_bitop(AluOp::Or, SpecialSelector::BitOr),
            I::BitShift => self.gen_bitshift(),

            I::SpecialSendAt => self.gen_at(),
            I::SpecialSendAtPut => self.gen_at_put(),
            I::SpecialSendSize => self.gen_size(),
            I::SpecialSendValue => self.gen_unary_send(SpecialSelector::Value),
            I::SpecialSendNew => self.gen_unary_send(SpecialSelector::New),
            I::SpecialSendClass => self.gen_unary_send(SpecialSelector::Class),

            I::Send { lit, nargs } => {
                let selector = self.literal_oop(lit);
                let n = usize::from(nargs);
                let mut args = Vec::with_capacity(n);
                for _ in 0..n {
                    args.push(self.pop_value());
                }
                args.reverse();
                let rcvr = self.pop_value();
                self.send(rcvr, &args, selector.0);
            }

            I::ReturnReceiver => self.teardown_and_ret(),
            I::ReturnTrue => {
                let r = self.receiver();
                self.ir.push(Ir::MovImm { dst: r, imm: self.input.true_obj.0 });
                self.teardown_and_ret();
            }
            I::ReturnFalse => {
                let r = self.receiver();
                self.ir.push(Ir::MovImm { dst: r, imm: self.input.false_obj.0 });
                self.teardown_and_ret();
            }
            I::ReturnNil => {
                let r = self.receiver();
                self.ir.push(Ir::MovImm { dst: r, imm: self.input.nil.0 });
                self.teardown_and_ret();
            }
            I::ReturnTop => {
                let v = self.pop_value();
                let r = self.receiver();
                self.ir.push(Ir::MovReg { dst: r, src: v });
                self.teardown_and_ret();
            }

            I::ShortJumpForward(_) | I::LongJumpForward(_) => {
                self.flush_sim();
                let taken = self.taken();
                self.ir.push(Ir::Jump(taken));
            }
            I::ShortJumpTrue(_) | I::LongJumpTrue(_) => self.gen_cond_jump(true),
            I::ShortJumpFalse(_) | I::LongJumpFalse(_) => self.gen_cond_jump(false),

            I::Nop => {}
        }
        Ok(())
    }

    /// Frame teardown + return: the frame pointer still holds the
    /// entry SP (which points at the caller's return address).
    fn teardown_and_ret(&mut self) {
        let sp = VReg::phys(self.conv.sp);
        let fp = VReg::phys(self.conv.fp);
        if !armed(mutops::DROP_TEARDOWN_SP_RESTORE) {
            self.ir.push(Ir::MovReg { dst: sp, src: fp });
        }
        self.ir.push(Ir::Ret);
    }

    fn taken(&mut self) -> LabelId {
        if let Some(l) = self.taken_label {
            return l;
        }
        let l = self.label();
        self.taken_label = Some(l);
        l
    }

    fn gen_cond_jump(&mut self, jump_on_true: bool) {
        let v = self.pop_value();
        self.flush_sim();
        let taken = self.taken();
        let fall = self.label();
        let (mut on_true, mut on_false) =
            if jump_on_true { (taken, fall) } else { (fall, taken) };
        if armed(mutops::COND_JUMP_SWAP_TARGETS) {
            std::mem::swap(&mut on_true, &mut on_false);
        }
        self.ir.push(Ir::CmpImm { a: v, imm: self.input.true_obj.0 });
        self.ir.push(Ir::JumpCc(Cond::Eq, on_true));
        self.ir.push(Ir::CmpImm { a: v, imm: self.input.false_obj.0 });
        self.ir.push(Ir::JumpCc(Cond::Eq, on_false));
        // Neither boolean: the mustBeBoolean error send.
        if !armed(mutops::DROP_MUST_BE_BOOLEAN) {
            let rcvr = VReg::phys(self.conv.receiver);
            self.ir.push(Ir::MovReg { dst: rcvr, src: v });
            self.ir.push(Ir::Send { selector_id: MUST_BE_BOOLEAN_SELECTOR });
        }
        self.bind(fall);
    }

    fn gen_arith(&mut self, op: AluOp, sel: SpecialSelector) {
        let arg = self.pop_value();
        let rcvr = self.pop_value();
        if !self.opts.inline_smallint_arith {
            self.send_special(rcvr, &[arg], sel);
            return;
        }
        let slow = self.label();
        let done = self.label();
        self.save_operands(&[rcvr, arg]);
        if !armed(mutops::DROP_RECEIVER_SMALLINT_CHECK) {
            self.check_small_int(rcvr, slow);
        }
        if !armed(mutops::DROP_ARG_SMALLINT_CHECK) {
            self.check_small_int(arg, slow);
        }
        match op {
            AluOp::Add => {
                // tagged(a)+tagged(b)-1 = tagged(a+b); Cog's sequence.
                // The operands are saved, so clobbering `arg` is fine.
                self.ir.push(Ir::AluImm { op: AluOp::Sub, dst: arg, a: arg, imm: 1 });
                self.ir.push(Ir::Alu { op: AluOp::Add, dst: arg, a: arg, b: rcvr });
                if !armed(mutops::DROP_ADD_OVERFLOW_CHECK) {
                    self.ir.push(Ir::JumpCc(Cond::Ov, slow));
                }
                self.drop_saved(2);
                self.push_reg(arg);
            }
            AluOp::Sub => {
                self.ir.push(Ir::Alu { op: AluOp::Sub, dst: rcvr, a: rcvr, b: arg });
                if !armed(mutops::DROP_SUB_OVERFLOW_CHECK) {
                    self.ir.push(Ir::JumpCc(Cond::Ov, slow));
                }
                self.ir.push(Ir::AluImm { op: AluOp::Add, dst: rcvr, a: rcvr, imm: 1 });
                self.drop_saved(2);
                self.push_reg(rcvr);
            }
            _ => {
                // Multiply: untag both in place, 32-bit multiply,
                // retag with a 31-bit overflow check.
                self.untag(rcvr, rcvr);
                self.untag(arg, arg);
                self.ir.push(Ir::Alu { op: AluOp::Mul, dst: rcvr, a: rcvr, b: arg });
                if !armed(mutops::DROP_MUL_OVERFLOW_CHECK) {
                    self.ir.push(Ir::JumpCc(Cond::Ov, slow));
                }
                self.retag(rcvr, Some(slow));
                self.drop_saved(2);
                self.push_reg(rcvr);
            }
        }
        self.ir.push(Ir::Jump(done));
        self.bind(slow);
        self.slow_send(1, sel.index());
        self.bind(done);
    }

    fn gen_compare(&mut self, cc: Cond, sel: SpecialSelector) {
        let arg = self.pop_value();
        let rcvr = self.pop_value();
        if !self.opts.inline_smallint_arith {
            self.send_special(rcvr, &[arg], sel);
            return;
        }
        let slow = self.label();
        let done = self.label();
        self.save_operands(&[rcvr, arg]);
        if !armed(mutops::DROP_COMPARE_SMALLINT_CHECKS) {
            self.check_small_int(rcvr, slow);
            self.check_small_int(arg, slow);
        }
        self.drop_saved(2);
        // Tagged values preserve signed order.
        let (a, b) =
            if armed(mutops::SWAP_COMPARE_OPERANDS) { (arg, rcvr) } else { (rcvr, arg) };
        self.ir.push(Ir::Cmp { a, b });
        let cc = if armed(mutops::FLIP_COMPARE_COND) { negate_cond(cc) } else { cc };
        self.push_bool(cc);
        self.ir.push(Ir::Jump(done));
        self.bind(slow);
        self.slow_send(1, sel.index());
        self.bind(done);
    }

    fn gen_divide(&mut self) {
        let arg = self.pop_value();
        let rcvr = self.pop_value();
        if !self.opts.inline_smallint_arith {
            self.send_special(rcvr, &[arg], SpecialSelector::Divide);
            return;
        }
        let slow = self.label();
        let done = self.label();
        self.save_operands(&[rcvr, arg]);
        self.check_small_int(rcvr, slow);
        self.check_small_int(arg, slow);
        // Divisor zero → slow (tagged 0 is 1).
        if !armed(mutops::DROP_DIV_ZERO_CHECK) {
            self.ir.push(Ir::CmpImm { a: arg, imm: Oop::from_small_int(0).0 });
            self.ir.push(Ir::JumpCc(Cond::Eq, slow));
        }
        self.untag(rcvr, rcvr);
        self.untag(arg, arg);
        if !armed(mutops::DROP_DIV_EXACT_CHECK) {
            let rem = self.fresh_transient();
            self.ir.push(Ir::Alu { op: AluOp::Rem, dst: rem, a: rcvr, b: arg });
            self.ir.push(Ir::CmpImm { a: rem, imm: 0 });
            self.ir.push(Ir::JumpCc(Cond::Ne, slow)); // inexact → send
        }
        self.ir.push(Ir::Alu { op: AluOp::Div, dst: rcvr, a: rcvr, b: arg });
        self.retag(rcvr, Some(slow));
        self.drop_saved(2);
        self.push_reg(rcvr);
        self.ir.push(Ir::Jump(done));
        self.bind(slow);
        self.slow_send(1, SpecialSelector::Divide.index());
        self.bind(done);
    }

    fn gen_mod_like(&mut self, want_mod: bool) {
        let sel = if want_mod { SpecialSelector::Modulo } else { SpecialSelector::IntegerDivide };
        let arg = self.pop_value();
        let rcvr = self.pop_value();
        if !self.opts.inline_smallint_arith {
            self.send_special(rcvr, &[arg], sel);
            return;
        }
        let slow = self.label();
        let done = self.label();
        self.save_operands(&[rcvr, arg]);
        self.check_small_int(rcvr, slow);
        self.check_small_int(arg, slow);
        self.ir.push(Ir::CmpImm { a: arg, imm: Oop::from_small_int(0).0 });
        self.ir.push(Ir::JumpCc(Cond::Eq, slow));
        self.untag(rcvr, rcvr);
        self.untag(arg, arg);
        let lskip = self.label();
        if want_mod {
            // Floored modulo: rem += b when rem != 0 and signs differ.
            let rem = self.fresh();
            self.ir.push(Ir::Alu { op: AluOp::Rem, dst: rem, a: rcvr, b: arg });
            if !armed(mutops::DROP_MOD_SIGN_ADJUST) {
                self.ir.push(Ir::CmpImm { a: rem, imm: 0 });
                self.ir.push(Ir::JumpCc(Cond::Eq, lskip));
                let t = self.fresh_transient();
                self.ir.push(Ir::Alu { op: AluOp::Xor, dst: t, a: rem, b: arg });
                self.ir.push(Ir::JumpCc(Cond::Ge, lskip));
                self.ir.push(Ir::Alu { op: AluOp::Add, dst: rem, a: rem, b: arg });
            }
            self.bind(lskip);
            self.retag(rem, None);
            self.drop_saved(2);
            self.push_reg(rem);
        } else {
            // Floored division: q -= 1 when rem != 0 and signs differ.
            let q = self.fresh();
            self.ir.push(Ir::Alu { op: AluOp::Div, dst: q, a: rcvr, b: arg });
            if !armed(mutops::DROP_INTDIV_FLOOR_ADJUST) {
                let rem = self.fresh_transient();
                self.ir.push(Ir::Alu { op: AluOp::Rem, dst: rem, a: rcvr, b: arg });
                self.ir.push(Ir::CmpImm { a: rem, imm: 0 });
                self.ir.push(Ir::JumpCc(Cond::Eq, lskip));
                self.ir.push(Ir::Alu { op: AluOp::Xor, dst: rem, a: rem, b: arg });
                self.ir.push(Ir::JumpCc(Cond::Ge, lskip));
                self.ir.push(Ir::AluImm { op: AluOp::Sub, dst: q, a: q, imm: 1 });
            }
            self.bind(lskip);
            self.retag(q, Some(slow));
            self.drop_saved(2);
            self.push_reg(q);
        }
        self.ir.push(Ir::Jump(done));
        self.bind(slow);
        self.slow_send(1, sel.index());
        self.bind(done);
    }

    fn gen_bitop(&mut self, op: AluOp, sel: SpecialSelector) {
        let arg = self.pop_value();
        let rcvr = self.pop_value();
        if !self.opts.inline_smallint_arith {
            self.send_special(rcvr, &[arg], sel);
            return;
        }
        let slow = self.label();
        let done = self.label();
        self.save_operands(&[rcvr, arg]);
        self.check_small_int(rcvr, slow);
        self.check_small_int(arg, slow);
        // Tagged AND/OR preserve the tag bit.
        let op = if op == AluOp::And && armed(mutops::BITAND_BECOMES_BITOR) {
            AluOp::Or
        } else {
            op
        };
        self.ir.push(Ir::Alu { op, dst: rcvr, a: rcvr, b: arg });
        self.drop_saved(2);
        self.push_reg(rcvr);
        self.ir.push(Ir::Jump(done));
        self.bind(slow);
        self.slow_send(1, sel.index());
        self.bind(done);
    }

    fn gen_bitshift(&mut self) {
        let arg = self.pop_value();
        let rcvr = self.pop_value();
        if !self.opts.inline_smallint_arith {
            self.send_special(rcvr, &[arg], SpecialSelector::BitShift);
            return;
        }
        let slow = self.label();
        let done = self.label();
        let lright = self.label();
        let lend = self.label();
        self.save_operands(&[rcvr, arg]);
        self.check_small_int(rcvr, slow);
        self.check_small_int(arg, slow);
        self.untag(arg, arg); // shift amount
        self.untag(rcvr, rcvr); // value
        // Shift counts beyond the word width go to the slow path (the
        // hardware masks the count to 31, which would be wrong).
        if !armed(mutops::DROP_SHIFT_RANGE_CHECK) {
            self.ir.push(Ir::CmpImm { a: arg, imm: 31 });
            self.ir.push(Ir::JumpCc(Cond::Gt, slow));
            self.ir.push(Ir::CmpImm { a: arg, imm: (-31i32) as u32 });
            self.ir.push(Ir::JumpCc(Cond::Lt, slow));
        }
        self.ir.push(Ir::CmpImm { a: arg, imm: 0 });
        self.ir.push(Ir::JumpCc(Cond::Lt, lright));
        // Left shift with overflow check.
        self.ir.push(Ir::Alu { op: AluOp::Shl, dst: rcvr, a: rcvr, b: arg });
        self.ir.push(Ir::JumpCc(Cond::Ov, slow));
        self.retag(rcvr, Some(slow));
        self.ir.push(Ir::Jump(lend));
        // Right shift: negate the amount, arithmetic shift.
        self.bind(lright);
        let neg = self.fresh_transient();
        self.ir.push(Ir::MovImm { dst: neg, imm: 0 });
        self.ir.push(Ir::Alu { op: AluOp::Sub, dst: neg, a: neg, b: arg });
        self.ir.push(Ir::Alu { op: AluOp::Sar, dst: rcvr, a: rcvr, b: neg });
        self.retag(rcvr, None);
        self.bind(lend);
        self.drop_saved(2);
        self.push_reg(rcvr);
        self.ir.push(Ir::Jump(done));
        self.bind(slow);
        self.slow_send(1, SpecialSelector::BitShift.index());
        self.bind(done);
    }

    fn gen_at(&mut self) {
        let idx = self.pop_value();
        let rcvr = self.pop_value();
        if !self.opts.inline_quick_sends {
            self.send_special(rcvr, &[idx], SpecialSelector::At);
            return;
        }
        let slow = self.label();
        let done = self.label();
        self.save_operands(&[rcvr, idx]);
        self.check_small_int(idx, slow);
        self.check_pointer(rcvr, slow);
        self.check_class(rcvr, ClassIndex::ARRAY, slow);
        let sz = self.fresh();
        self.ir.push(Ir::Load { dst: sz, base: rcvr, off: SIZE_OFF });
        // Untag the index into the scratch register (transients are
        // free past the checks).
        let i0 = self.fresh_transient();
        self.untag(i0, idx);
        if !armed(mutops::DROP_AT_LOWER_BOUND_CHECK) {
            self.ir.push(Ir::CmpImm { a: i0, imm: 1 });
            self.ir.push(Ir::JumpCc(Cond::Lt, slow));
        }
        self.ir.push(Ir::Cmp { a: i0, b: sz });
        self.ir.push(Ir::JumpCc(Cond::Gt, slow));
        if !armed(mutops::AT_INDEX_OFF_BY_ONE) {
            self.ir.push(Ir::AluImm { op: AluOp::Sub, dst: i0, a: i0, imm: 1 });
        }
        self.ir.push(Ir::AluImm { op: AluOp::Shl, dst: i0, a: i0, imm: 2 });
        self.ir.push(Ir::Alu { op: AluOp::Add, dst: i0, a: i0, b: rcvr });
        self.ir.push(Ir::Load { dst: sz, base: i0, off: BODY_OFF });
        self.drop_saved(2);
        self.push_reg(sz);
        self.ir.push(Ir::Jump(done));
        self.bind(slow);
        self.slow_send(1, SpecialSelector::At.index());
        self.bind(done);
    }

    fn gen_at_put(&mut self) {
        let value = self.pop_value();
        let idx = self.pop_value();
        let rcvr = self.pop_value();
        if !self.opts.inline_quick_sends {
            self.send_special(rcvr, &[idx, value], SpecialSelector::AtPut);
            return;
        }
        let slow = self.label();
        let done = self.label();
        self.save_operands(&[rcvr, idx, value]);
        self.check_small_int(idx, slow);
        self.check_pointer(rcvr, slow);
        if !armed(mutops::DROP_ATPUT_CLASS_CHECK) {
            self.check_class(rcvr, ClassIndex::ARRAY, slow);
        }
        let sz = self.fresh();
        self.ir.push(Ir::Load { dst: sz, base: rcvr, off: SIZE_OFF });
        let i0 = self.fresh_transient();
        self.untag(i0, idx);
        self.ir.push(Ir::CmpImm { a: i0, imm: 1 });
        self.ir.push(Ir::JumpCc(Cond::Lt, slow));
        self.ir.push(Ir::Cmp { a: i0, b: sz });
        self.ir.push(Ir::JumpCc(Cond::Gt, slow));
        self.ir.push(Ir::AluImm { op: AluOp::Sub, dst: i0, a: i0, imm: 1 });
        self.ir.push(Ir::AluImm { op: AluOp::Shl, dst: i0, a: i0, imm: 2 });
        self.ir.push(Ir::Alu { op: AluOp::Add, dst: i0, a: i0, b: rcvr });
        self.ir.push(Ir::Store { src: value, base: i0, off: BODY_OFF });
        self.drop_saved(3);
        self.push_reg(value);
        self.ir.push(Ir::Jump(done));
        self.bind(slow);
        self.slow_send(2, SpecialSelector::AtPut.index());
        self.bind(done);
    }

    fn gen_size(&mut self) {
        let rcvr = self.pop_value();
        if !self.opts.inline_quick_sends {
            self.send_special(rcvr, &[], SpecialSelector::Size);
            return;
        }
        let slow = self.label();
        let done = self.label();
        let lbytes = self.label();
        let lgot = self.label();
        self.save_operands(&[rcvr]);
        self.check_pointer(rcvr, slow);
        let t = self.fresh_transient();
        self.ir.push(Ir::Load { dst: t, base: rcvr, off: 0 });
        self.ir.push(Ir::AluImm { op: AluOp::And, dst: t, a: t, imm: 0x00ff_ffff });
        self.ir.push(Ir::CmpImm { a: t, imm: ClassIndex::ARRAY.value() });
        self.ir.push(Ir::JumpCc(Cond::Ne, lbytes));
        let sz = self.fresh();
        self.ir.push(Ir::Load { dst: sz, base: rcvr, off: SIZE_OFF });
        self.ir.push(Ir::Jump(lgot));
        self.bind(lbytes);
        if !armed(mutops::DROP_SIZE_BYTEARRAY_CHECK) {
            self.ir.push(Ir::CmpImm { a: t, imm: ClassIndex::BYTE_ARRAY.value() });
            self.ir.push(Ir::JumpCc(Cond::Ne, slow));
        }
        self.ir.push(Ir::Load { dst: sz, base: rcvr, off: SIZE_OFF });
        self.bind(lgot);
        self.retag(sz, None);
        self.drop_saved(1);
        self.push_reg(sz);
        self.ir.push(Ir::Jump(done));
        self.bind(slow);
        self.slow_send(0, SpecialSelector::Size.index());
        self.bind(done);
    }

    fn gen_unary_send(&mut self, sel: SpecialSelector) {
        let rcvr = self.pop_value();
        self.send_special(rcvr, &[], sel);
    }
}

/// Compiles one bytecode instruction test per the §4.2 schema.
pub fn compile_bytecode_test(
    kind: CompilerKind,
    input: &BytecodeTestInput<'_>,
    isa: Isa,
) -> Result<CompiledCode, CompileError> {
    compile_sequence(kind, std::slice::from_ref(&input.instruction), input, isa)
}

/// Compiles a straight-line bytecode **sequence** test (the paper's
/// future-work extension): the instructions are generated back to
/// back, so one instruction's fast-path results flow into the next —
/// a send, return or taken jump anywhere terminates the run, exactly
/// as it would in a real compiled method.
pub fn compile_bytecode_sequence_test(
    kind: CompilerKind,
    instrs: &[Instruction],
    input: &BytecodeTestInput<'_>,
    isa: Isa,
) -> Result<CompiledCode, CompileError> {
    compile_sequence(kind, instrs, input, isa)
}

fn compile_sequence(
    kind: CompilerKind,
    instrs: &[Instruction],
    input: &BytecodeTestInput<'_>,
    isa: Isa,
) -> Result<CompiledCode, CompileError> {
    let opts = kind.options();
    let mut g = Gen::new(opts, input, isa);
    let conv = g.conv;

    // Preamble: frame pointer, temps, spill reserve.
    g.ir.push(Ir::MovReg { dst: VReg::phys(conv.fp), src: VReg::phys(conv.sp) });
    for &t in input.temps {
        let tr = g.fresh_transient();
        g.ir.push(Ir::MovImm { dst: tr, imm: t.0 });
        g.ir.push(Ir::Push { src: tr });
    }
    g.ir.push(Ir::AluImm {
        op: AluOp::Sub,
        dst: VReg::phys(conv.sp),
        a: VReg::phys(conv.sp),
        imm: SPILL_BYTES,
    });

    // genPushLiteral for each operand-stack input (§4.2, Listing 3).
    for &v in input.operand_stack {
        g.push_imm(v.0);
    }

    for &instr in instrs {
        g.recycle_regs();
        g.gen(instr)?;
    }

    // Epilogue: spill the parse stack, stop.
    g.flush_sim();
    g.ir.push(Ir::Stop(stops::FALL_THROUGH));
    if let Some(taken) = g.taken_label {
        g.ir.push(Ir::Label(taken));
        g.ir.push(Ir::Stop(stops::JUMP_TAKEN));
    }

    let ir = if opts.use_vregs {
        allocate(g.ir, isa, input.temps.len() as u32)?
    } else {
        g.ir
    };
    let code = lower(&ir, isa)?;
    Ok(CompiledCode { code, isa, ntemps: input.temps.len() as u32 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use igjit_heap::ObjectMemory;
    use igjit_machine::{Machine, MachineConfig, MachineOutcome};

    struct TestRun {
        outcome: MachineOutcome,
        operand_stack: Vec<u32>,
        result_reg: u32,
        mem: ObjectMemory,
    }

    fn run_test(
        kind: CompilerKind,
        isa: Isa,
        instr: Instruction,
        stack: &[Oop],
        mem: ObjectMemory,
        receiver: Oop,
    ) -> TestRun {
        let mut mem = mem;
        let input = BytecodeTestInput {
            instruction: instr,
            operand_stack: stack,
            temps: &[],
            literals: &[],
            nil: mem.nil(),
            true_obj: mem.true_object(),
            false_obj: mem.false_object(),
        };
        let compiled = compile_bytecode_test(kind, &input, isa).unwrap();
        let frame_bytes = 4 * compiled.ntemps + SPILL_BYTES;
        let mut m = Machine::new(&mut mem, isa, &compiled.code);
        let conv = Convention::for_isa(isa);
        m.set_reg(conv.receiver, receiver.0);
        let outcome = m.run(MachineConfig::default());
        // Read the compiled operand stack (words between SP and the
        // frame base).
        let sp = m.reg(conv.sp);
        let limit = m.initial_sp() - frame_bytes;
        let mut operand_stack = Vec::new();
        let mut a = sp;
        while a < limit {
            operand_stack.push(m.read_stack(a).unwrap());
            a += 4;
        }
        let result_reg = m.reg(conv.receiver);
        drop(m);
        TestRun { outcome, operand_stack, result_reg, mem }
    }

    fn si(v: i64) -> Oop {
        Oop::from_small_int(v)
    }

    #[test]
    fn add_inlined_on_stack_to_register() {
        for isa in [Isa::X86ish, Isa::Arm32ish] {
            for kind in [CompilerKind::StackToRegister, CompilerKind::RegisterAllocating] {
                let r = run_test(kind, isa, Instruction::Add, &[si(20), si(22)],
                                 ObjectMemory::new(), si(0));
                assert_eq!(
                    r.outcome,
                    MachineOutcome::Breakpoint { code: stops::FALL_THROUGH },
                    "{kind:?} {isa:?}"
                );
                assert_eq!(r.operand_stack, vec![si(42).0], "{kind:?} {isa:?}");
            }
        }
    }

    #[test]
    fn add_always_sends_on_simple_stack() {
        // The optimisation-difference defect: no static type
        // prediction on the simple tier.
        let r = run_test(
            CompilerKind::SimpleStackBased,
            Isa::X86ish,
            Instruction::Add,
            &[si(20), si(22)],
            ObjectMemory::new(),
            si(0),
        );
        assert_eq!(
            r.outcome,
            MachineOutcome::Send { selector_id: SpecialSelector::Plus.index() }
        );
    }

    #[test]
    fn add_overflow_takes_the_send_path() {
        let r = run_test(
            CompilerKind::StackToRegister,
            Isa::Arm32ish,
            Instruction::Add,
            &[si(igjit_heap::SMALL_INT_MAX), si(1)],
            ObjectMemory::new(),
            si(0),
        );
        assert_eq!(
            r.outcome,
            MachineOutcome::Send { selector_id: SpecialSelector::Plus.index() }
        );
    }

    #[test]
    fn float_operands_send_on_every_tier() {
        // The interpreter inlines float+float; no compiler tier does.
        let mut mem = ObjectMemory::new();
        let a = mem.instantiate_float(1.5).unwrap();
        let b = mem.instantiate_float(2.0).unwrap();
        for kind in CompilerKind::ALL {
            let r = run_test(kind, Isa::X86ish, Instruction::Add, &[a, b], mem.clone(), si(0));
            assert_eq!(
                r.outcome,
                MachineOutcome::Send { selector_id: SpecialSelector::Plus.index() },
                "{kind:?}"
            );
        }
    }

    #[test]
    fn comparisons_push_booleans() {
        let mem = ObjectMemory::new();
        let t = mem.true_object();
        let f = mem.false_object();
        let r = run_test(CompilerKind::StackToRegister, Isa::X86ish,
                         Instruction::LessThan, &[si(3), si(5)], mem.clone(), si(0));
        assert_eq!(r.operand_stack, vec![t.0]);
        let r = run_test(CompilerKind::RegisterAllocating, Isa::Arm32ish,
                         Instruction::LessThan, &[si(5), si(3)], mem, si(0));
        assert_eq!(r.operand_stack, vec![f.0]);
    }

    #[test]
    fn subtract_and_multiply() {
        let r = run_test(CompilerKind::StackToRegister, Isa::X86ish,
                         Instruction::Subtract, &[si(50), si(8)], ObjectMemory::new(), si(0));
        assert_eq!(r.operand_stack, vec![si(42).0]);
        let r = run_test(CompilerKind::RegisterAllocating, Isa::Arm32ish,
                         Instruction::Multiply, &[si(-6), si(7)], ObjectMemory::new(), si(0));
        assert_eq!(r.operand_stack, vec![si(-42).0]);
    }

    #[test]
    fn multiply_overflow_sends() {
        let r = run_test(CompilerKind::StackToRegister, Isa::X86ish,
                         Instruction::Multiply, &[si(1 << 20), si(1 << 20)],
                         ObjectMemory::new(), si(0));
        assert!(matches!(r.outcome, MachineOutcome::Send { .. }));
    }

    #[test]
    fn division_family() {
        let r = run_test(CompilerKind::StackToRegister, Isa::X86ish,
                         Instruction::Divide, &[si(12), si(4)], ObjectMemory::new(), si(0));
        assert_eq!(r.operand_stack, vec![si(3).0]);
        // Inexact → send.
        let r = run_test(CompilerKind::StackToRegister, Isa::X86ish,
                         Instruction::Divide, &[si(12), si(5)], ObjectMemory::new(), si(0));
        assert!(matches!(r.outcome, MachineOutcome::Send { .. }));
        // Floored modulo of negatives.
        let r = run_test(CompilerKind::StackToRegister, Isa::Arm32ish,
                         Instruction::Modulo, &[si(-7), si(3)], ObjectMemory::new(), si(0));
        assert_eq!(r.operand_stack, vec![si(2).0]);
        let r = run_test(CompilerKind::RegisterAllocating, Isa::X86ish,
                         Instruction::IntegerDivide, &[si(-7), si(3)], ObjectMemory::new(), si(0));
        assert_eq!(r.operand_stack, vec![si(-3).0]);
    }

    #[test]
    fn bit_operations() {
        let r = run_test(CompilerKind::StackToRegister, Isa::X86ish,
                         Instruction::BitAnd, &[si(6), si(3)], ObjectMemory::new(), si(0));
        assert_eq!(r.operand_stack, vec![si(2).0]);
        let r = run_test(CompilerKind::StackToRegister, Isa::X86ish,
                         Instruction::BitShift, &[si(4), si(2)], ObjectMemory::new(), si(0));
        assert_eq!(r.operand_stack, vec![si(16).0]);
        let r = run_test(CompilerKind::StackToRegister, Isa::Arm32ish,
                         Instruction::BitShift, &[si(16), si(-2)], ObjectMemory::new(), si(0));
        assert_eq!(r.operand_stack, vec![si(4).0]);
        // Shift overflow → send.
        let r = run_test(CompilerKind::StackToRegister, Isa::X86ish,
                         Instruction::BitShift, &[si(1), si(40)], ObjectMemory::new(), si(0));
        assert!(matches!(r.outcome, MachineOutcome::Send { .. }));
    }

    #[test]
    fn pushes_and_stack_shuffles() {
        for kind in CompilerKind::ALL {
            let r = run_test(kind, Isa::X86ish, Instruction::Dup, &[si(9)],
                             ObjectMemory::new(), si(0));
            assert_eq!(r.operand_stack, vec![si(9).0, si(9).0], "{kind:?}");
            let r = run_test(kind, Isa::Arm32ish, Instruction::Pop, &[si(9), si(8)],
                             ObjectMemory::new(), si(0));
            assert_eq!(r.operand_stack, vec![si(9).0], "{kind:?}");
            let r = run_test(kind, Isa::X86ish, Instruction::PushTwo, &[],
                             ObjectMemory::new(), si(0));
            assert_eq!(r.operand_stack, vec![si(2).0], "{kind:?}");
        }
    }

    #[test]
    fn receiver_variable_access() {
        let mut mem = ObjectMemory::new();
        let rcvr = mem.instantiate_array(&[si(77), si(88)]).unwrap();
        let r = run_test(CompilerKind::StackToRegister, Isa::X86ish,
                         Instruction::PushReceiverVariable(1), &[], mem, rcvr);
        assert_eq!(r.operand_stack, vec![si(88).0]);
    }

    #[test]
    fn receiver_variable_store_mutates_heap() {
        let mut mem = ObjectMemory::new();
        let rcvr = mem.instantiate_array(&[si(0)]).unwrap();
        let r = run_test(CompilerKind::SimpleStackBased, Isa::Arm32ish,
                         Instruction::PopIntoReceiverVariable(0), &[si(42)], mem, rcvr);
        assert_eq!(r.outcome, MachineOutcome::Breakpoint { code: stops::FALL_THROUGH });
        assert_eq!(r.mem.fetch_pointer(rcvr, 0).unwrap(), si(42));
        assert!(r.operand_stack.is_empty());
    }

    #[test]
    fn quick_at_on_all_tiers() {
        let mut mem = ObjectMemory::new();
        let arr = mem.instantiate_array(&[si(10), si(20)]).unwrap();
        for kind in CompilerKind::ALL {
            let r = run_test(kind, Isa::X86ish, Instruction::SpecialSendAt,
                             &[arr, si(2)], mem.clone(), si(0));
            assert_eq!(
                r.outcome,
                MachineOutcome::Breakpoint { code: stops::FALL_THROUGH },
                "{kind:?}"
            );
            assert_eq!(r.operand_stack, vec![si(20).0], "{kind:?}");
            // Bounds bail-out.
            let r = run_test(kind, Isa::Arm32ish, Instruction::SpecialSendAt,
                             &[arr, si(3)], mem.clone(), si(0));
            assert_eq!(
                r.outcome,
                MachineOutcome::Send { selector_id: SpecialSelector::At.index() },
                "{kind:?}"
            );
        }
    }

    #[test]
    fn quick_size_array_and_bytes() {
        let mut mem = ObjectMemory::new();
        let arr = mem.instantiate_array(&[si(1), si(2), si(3)]).unwrap();
        let bytes = mem.instantiate_bytes(ClassIndex::BYTE_ARRAY, &[1, 2]).unwrap();
        let r = run_test(CompilerKind::StackToRegister, Isa::X86ish,
                         Instruction::SpecialSendSize, &[arr], mem.clone(), si(0));
        assert_eq!(r.operand_stack, vec![si(3).0]);
        let r = run_test(CompilerKind::StackToRegister, Isa::Arm32ish,
                         Instruction::SpecialSendSize, &[bytes], mem, si(0));
        assert_eq!(r.operand_stack, vec![si(2).0]);
    }

    #[test]
    fn jumps_hit_the_right_stops() {
        let mem = ObjectMemory::new();
        let t = mem.true_object();
        let f = mem.false_object();
        let r = run_test(CompilerKind::StackToRegister, Isa::X86ish,
                         Instruction::ShortJumpForward(3), &[], mem.clone(), si(0));
        assert_eq!(r.outcome, MachineOutcome::Breakpoint { code: stops::JUMP_TAKEN });
        let r = run_test(CompilerKind::StackToRegister, Isa::X86ish,
                         Instruction::ShortJumpTrue(3), &[t], mem.clone(), si(0));
        assert_eq!(r.outcome, MachineOutcome::Breakpoint { code: stops::JUMP_TAKEN });
        let r = run_test(CompilerKind::StackToRegister, Isa::Arm32ish,
                         Instruction::ShortJumpTrue(3), &[f], mem.clone(), si(0));
        assert_eq!(r.outcome, MachineOutcome::Breakpoint { code: stops::FALL_THROUGH });
        // Non-boolean → mustBeBoolean send.
        let r = run_test(CompilerKind::SimpleStackBased, Isa::X86ish,
                         Instruction::ShortJumpFalse(3), &[si(1)], mem, si(0));
        assert_eq!(r.outcome, MachineOutcome::Send { selector_id: MUST_BE_BOOLEAN_SELECTOR });
    }

    #[test]
    fn returns_set_the_result_register() {
        let mem = ObjectMemory::new();
        let t = mem.true_object();
        let r = run_test(CompilerKind::StackToRegister, Isa::X86ish,
                         Instruction::ReturnTop, &[si(33)], mem.clone(), si(7));
        assert_eq!(r.outcome, MachineOutcome::ReturnedToCaller);
        assert_eq!(r.result_reg, si(33).0);
        let r = run_test(CompilerKind::SimpleStackBased, Isa::Arm32ish,
                         Instruction::ReturnReceiver, &[], mem.clone(), si(7));
        assert_eq!(r.result_reg, si(7).0);
        let r = run_test(CompilerKind::RegisterAllocating, Isa::X86ish,
                         Instruction::ReturnTrue, &[], mem, si(7));
        assert_eq!(r.result_reg, t.0);
    }

    #[test]
    fn generic_send_marshals_selector() {
        let mut mem = ObjectMemory::new();
        let sel = mem.instantiate_bytes(ClassIndex::SYMBOL, b"foo:").unwrap();
        let input = BytecodeTestInput {
            instruction: Instruction::Send { lit: 0, nargs: 1 },
            operand_stack: &[si(5), si(6)],
            temps: &[],
            literals: &[sel],
            nil: mem.nil(),
            true_obj: mem.true_object(),
            false_obj: mem.false_object(),
        };
        for kind in CompilerKind::ALL {
            let compiled = compile_bytecode_test(kind, &input, Isa::X86ish).unwrap();
            let mut mem2 = mem.clone();
            let mut m = Machine::new(&mut mem2, Isa::X86ish, &compiled.code);
            let out = m.run(MachineConfig::default());
            assert_eq!(out, MachineOutcome::Send { selector_id: sel.0 }, "{kind:?}");
            let conv = Convention::for_isa(Isa::X86ish);
            assert_eq!(m.reg(conv.receiver), si(5).0, "{kind:?}");
            assert_eq!(m.reg(conv.arg0), si(6).0, "{kind:?}");
        }
    }

    #[test]
    fn temps_are_materialized_and_stored() {
        let mem = ObjectMemory::new();
        let nil = mem.nil();
        let input = BytecodeTestInput {
            instruction: Instruction::PushTemp(1),
            operand_stack: &[],
            temps: &[si(5), si(17)],
            literals: &[],
            nil,
            true_obj: mem.true_object(),
            false_obj: mem.false_object(),
        };
        for kind in CompilerKind::ALL {
            let compiled = compile_bytecode_test(kind, &input, Isa::Arm32ish).unwrap();
            let mut mem2 = mem.clone();
            let mut m = Machine::new(&mut mem2, Isa::Arm32ish, &compiled.code);
            let out = m.run(MachineConfig::default());
            assert_eq!(out, MachineOutcome::Breakpoint { code: stops::FALL_THROUGH });
            let conv = Convention::for_isa(Isa::Arm32ish);
            let sp = m.reg(conv.sp);
            assert_eq!(m.read_stack(sp).unwrap(), si(17).0, "{kind:?}: pushed temp 1");
        }
    }

    #[test]
    fn push_this_context_is_unsupported() {
        let mem = ObjectMemory::new();
        let input = BytecodeTestInput {
            instruction: Instruction::PushThisContext,
            operand_stack: &[],
            temps: &[],
            literals: &[],
            nil: mem.nil(),
            true_obj: mem.true_object(),
            false_obj: mem.false_object(),
        };
        assert!(matches!(
            compile_bytecode_test(CompilerKind::StackToRegister, &input, Isa::X86ish),
            Err(CompileError::Unsupported(_))
        ));
    }
}
