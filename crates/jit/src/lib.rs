//! # igjit-jit — the Cogit-style JIT compilers
//!
//! The Pharo VM's JIT (Cogit, §4.1 of the paper) has one IR, several
//! byte-code front-ends, a template-based native-method front-end, and
//! per-ISA back-ends. This crate reproduces that architecture:
//!
//! * [`Ir`] — a CogRTL-flavoured linear IR over virtual registers,
//! * three bytecode front-ends sharing one generator, differing in the
//!   [`CompilerOptions`] exactly like the real tiers differ:
//!   - [`CompilerKind::SimpleStackBased`] — push/pop byte-codes map to
//!     machine push/pop; **no static type prediction** (every
//!     arithmetic bytecode compiles to a send),
//!   - [`CompilerKind::StackToRegister`] — parse-time stack that
//!     avoids unnecessary stack traffic; inlines **SmallInteger**
//!     arithmetic but — unlike the interpreter — **not Float**
//!     arithmetic (the paper's *optimisation difference* family),
//!   - [`CompilerKind::RegisterAllocating`] — extends StackToRegister
//!     with a linear-scan register allocator,
//! * a [`native`] template compiler for the native methods, carrying
//!   the planted compiled-side defects (missing float receiver checks,
//!   unsigned bitwise semantics, floored `quo:`, 60 unimplemented FFI
//!   templates),
//! * [`backend::lower`] — lowering + encoding for the two ISAs
//!   ([`igjit_machine::Isa::X86ish`] two-address,
//!   [`igjit_machine::Isa::Arm32ish`] three-address).
//!
//! The compilation schema follows §4.2: the unit is a whole method —
//! a preamble materializing temps, `genPushLiteral` for each required
//! operand-stack value, the instruction under test, then
//! exit-condition-specific returns and `Stop` breakpoints.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
mod bytecode_compiler;
pub mod cache;
mod convention;
mod ir;
pub mod native;
mod regalloc;

pub use bytecode_compiler::{compile_bytecode_sequence_test, compile_bytecode_test,
                            BytecodeTestInput, CompilerKind, CompilerOptions};
pub use cache::{CacheEntry, CodeCache, CompileKey, CompileKeyRef};
pub use native::NativeTestInput;
pub use regalloc::SPILL_BYTES;
pub use convention::Convention;
pub use ir::{Ir, LabelId, VReg, MUST_BE_BOOLEAN_SELECTOR};
pub use native::compile_native_test;

use igjit_machine::Isa;

/// A compiled test method ready to run on the machine simulator.
#[derive(Clone, Debug)]
pub struct CompiledCode {
    /// Encoded machine code (map at `CODE_BASE`).
    pub code: Vec<u8>,
    /// Target ISA.
    pub isa: Isa,
    /// Number of temp slots the preamble materialized.
    pub ntemps: u32,
}

/// Compilation failures.
#[derive(Clone, PartialEq, Debug)]
pub enum CompileError {
    /// The front-end has no implementation for this operation — the
    /// paper's *missing functionality* defect family surfaces here
    /// (e.g. all FFI native methods on the 32-bit template compiler).
    NotImplemented(&'static str),
    /// The instruction is outside what the testing front-end models.
    Unsupported(&'static str),
    /// Back-end lowering failed (assembler-level bug).
    Backend(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::NotImplemented(what) => write!(f, "not implemented: {what}"),
            CompileError::Unsupported(what) => write!(f, "unsupported: {what}"),
            CompileError::Backend(what) => write!(f, "backend error: {what}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Breakpoint codes used by the test compilation schema.
pub mod stops {
    /// Fall-through end of a bytecode test (Success) / native-method
    /// fall-through (Failure, §4.2's breakpoint after the native
    /// behaviour).
    pub const FALL_THROUGH: u8 = 0;
    /// The jump-taken landing pad of a jump bytecode test.
    pub const JUMP_TAKEN: u8 = 1;
}

/// Compile-time source fingerprint (see `igjit-corpus`).
pub mod srcid;
