//! Compiled-code caching for the differential campaign.
//!
//! The test compilation schema (§4.2) embeds the operand stack, temps
//! and literals of the input frame as constants, so compiled code is a
//! pure function of `(front-end, ISA, instruction sequence, embedded
//! frame values, special oops)`. The campaign, however, compiles once
//! per *run*: every model of a path, every probe variant and every
//! re-materialization triggers an identical compile. A [`CodeCache`]
//! keyed on exactly the compile-relevant inputs collapses those runs
//! onto one artifact per distinct key — native methods, whose code
//! depends only on the method id and ISA, drop from thousands of
//! compiles to one per `(method, ISA)` pair.
//!
//! Refusals ([`CompileError`]) are cached too: the 60 unimplemented
//! FFI templates refuse identically on every model.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use igjit_bytecode::Instruction;
use igjit_machine::Isa;
use igjit_mutate::{armed, ops as mutops};

use crate::{CompileError, CompiledCode, CompilerKind};

/// Applies the cache-layer mutations: each drops one compile-relevant
/// field from the lookup key, conflating entries that must be distinct.
fn mutate_key(mut key: CompileKey) -> CompileKey {
    match &mut key {
        CompileKey::Bytecode { kind, stack, nil, true_obj, false_obj, .. } => {
            if armed(mutops::CACHE_KEY_IGNORES_STACK) {
                stack.clear();
            }
            if armed(mutops::CACHE_KEY_IGNORES_KIND) {
                *kind = CompilerKind::SimpleStackBased;
            }
            if armed(mutops::CACHE_KEY_IGNORES_SPECIAL_OOPS) {
                *nil = 0;
                *true_obj = 0;
                *false_obj = 0;
            }
        }
        CompileKey::Native { nil, true_obj, false_obj, .. } => {
            if armed(mutops::CACHE_KEY_IGNORES_SPECIAL_OOPS) {
                *nil = 0;
                *true_obj = 0;
                *false_obj = 0;
            }
        }
    }
    key
}

/// Everything a test compilation depends on, by value.
///
/// The receiver is *not* part of a bytecode key: it rides in the
/// calling-convention register and never reaches the generated code.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum CompileKey {
    /// A bytecode (sequence) test compilation.
    Bytecode {
        /// Front-end tier.
        kind: CompilerKind,
        /// Target ISA.
        isa: Isa,
        /// The instruction sequence under test.
        instrs: Vec<Instruction>,
        /// Operand-stack oops embedded by `genPushLiteral`.
        stack: Vec<u32>,
        /// Temp oops materialized by the preamble.
        temps: Vec<u32>,
        /// Method literal oops.
        literals: Vec<u32>,
        /// The nil oop compiled into push-constant code.
        nil: u32,
        /// The true oop.
        true_obj: u32,
        /// The false oop.
        false_obj: u32,
    },
    /// A native-method template compilation.
    Native {
        /// Native method id.
        id: u32,
        /// Target ISA.
        isa: Isa,
        /// The nil oop.
        nil: u32,
        /// The true oop.
        true_obj: u32,
        /// The false oop.
        false_obj: u32,
    },
}

/// A concurrent cache of compiled test artifacts (including refusals),
/// shared across models, probes, paths and worker threads.
///
/// Compilation is deterministic, so cache hits return byte-identical
/// code and the campaign's outputs are unchanged by caching; the
/// `code_cache_tests` suite enforces both properties.
pub struct CodeCache {
    map: RwLock<HashMap<CompileKey, Arc<Result<CompiledCode, CompileError>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    enabled: bool,
}

impl Default for CodeCache {
    fn default() -> Self {
        CodeCache::new()
    }
}

impl CodeCache {
    /// An empty, enabled cache.
    pub fn new() -> CodeCache {
        CodeCache {
            map: RwLock::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            enabled: true,
        }
    }

    /// A cache that never stores: every lookup compiles fresh and
    /// counts as a miss, keeping invocation accounting comparable in
    /// cache-on/off experiments.
    pub fn disabled() -> CodeCache {
        CodeCache { enabled: false, ..CodeCache::new() }
    }

    /// [`CodeCache::new`] or [`CodeCache::disabled`] by flag.
    pub fn with_enabled(enabled: bool) -> CodeCache {
        if enabled {
            CodeCache::new()
        } else {
            CodeCache::disabled()
        }
    }

    /// Whether lookups may hit.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Looks up `key`, invoking `compile` on a miss. The returned
    /// artifact is shared; callers clone the code bytes they hand to a
    /// machine.
    pub fn get_or_compile(
        &self,
        key: CompileKey,
        compile: impl FnOnce() -> Result<CompiledCode, CompileError>,
    ) -> Arc<Result<CompiledCode, CompileError>> {
        if !self.enabled {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Arc::new(compile());
        }
        let key = mutate_key(key);
        if let Some(hit) = self.map.read().expect("code cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Compile outside the lock; a racing thread compiling the same
        // key produces an identical artifact (compilation is pure).
        self.misses.fetch_add(1, Ordering::Relaxed);
        let artifact = Arc::new(compile());
        let mut map = self.map.write().expect("code cache poisoned");
        Arc::clone(map.entry(key).or_insert(artifact))
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to compile (with caching off, every
    /// lookup).
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct artifacts currently stored.
    pub fn len(&self) -> usize {
        self.map.read().expect("code cache poisoned").len()
    }

    /// Whether the cache holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn native_key(id: u32) -> CompileKey {
        CompileKey::Native { id, isa: Isa::X86ish, nil: 2, true_obj: 6, false_obj: 10 }
    }

    fn fake_code(byte: u8) -> Result<CompiledCode, CompileError> {
        Ok(CompiledCode { code: vec![byte; 4], isa: Isa::X86ish, ntemps: 0 })
    }

    #[test]
    fn second_lookup_hits_and_shares_the_artifact() {
        let cache = CodeCache::new();
        let a = cache.get_or_compile(native_key(1), || fake_code(0xAA));
        let b = cache.get_or_compile(native_key(1), || panic!("must not recompile"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn distinct_keys_compile_separately() {
        let cache = CodeCache::new();
        cache.get_or_compile(native_key(1), || fake_code(1));
        cache.get_or_compile(native_key(2), || fake_code(2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn refusals_are_cached() {
        let cache = CodeCache::new();
        let key = native_key(120);
        cache.get_or_compile(key.clone(), || Err(CompileError::NotImplemented("ffi")));
        let r = cache.get_or_compile(key, || panic!("refusal must be cached"));
        assert!(matches!(&*r, Err(CompileError::NotImplemented("ffi"))));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn disabled_cache_always_compiles() {
        let cache = CodeCache::disabled();
        cache.get_or_compile(native_key(1), || fake_code(1));
        cache.get_or_compile(native_key(1), || fake_code(1));
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert!(cache.is_empty());
    }
}
