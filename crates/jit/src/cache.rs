//! Compiled-code caching for the differential campaign.
//!
//! The test compilation schema (§4.2) embeds the operand stack, temps
//! and literals of the input frame as constants, so compiled code is a
//! pure function of `(front-end, ISA, instruction sequence, embedded
//! frame values, special oops)`. The campaign, however, compiles once
//! per *run*: every model of a path, every probe variant and every
//! re-materialization triggers an identical compile. A [`CodeCache`]
//! keyed on exactly the compile-relevant inputs collapses those runs
//! onto one artifact per distinct key — native methods, whose code
//! depends only on the method id and ISA, drop from thousands of
//! compiles to one per `(method, ISA)` pair.
//!
//! Refusals ([`CompileError`]) are cached too: the 60 unimplemented
//! FFI templates refuse identically on every model.
//!
//! Engine v5 reworked the lookup path around two observations. First,
//! the campaign performs ~3× more lookups than compiles, and building
//! an owned [`CompileKey`] per lookup means three `Vec` allocations
//! that are immediately discarded on a hit — [`CompileKeyRef`] borrows
//! the frame's slices instead, and the owned key is only materialized
//! on a miss. Second, every artifact is eventually *executed* many
//! times, so each cache entry ([`CacheEntry`]) lazily carries a
//! [`PredecodedCode`] built once from the artifact bytes — after any
//! armed `igjit-mutate` operator has perturbed them — and shared by
//! every subsequent replay.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

use igjit_bytecode::fxhash::FxHasher64;
use igjit_bytecode::Instruction;
use igjit_heap::Oop;
use igjit_machine::{Isa, PredecodedCode};
use igjit_mutate::{armed, ops as mutops};

use crate::{CompileError, CompiledCode, CompilerKind};

/// Applies the cache-layer mutations: each drops one compile-relevant
/// field from the lookup key, conflating entries that must be distinct.
fn mutate_key(mut key: CompileKey) -> CompileKey {
    match &mut key {
        CompileKey::Bytecode { kind, stack, nil, true_obj, false_obj, .. } => {
            if armed(mutops::CACHE_KEY_IGNORES_STACK) {
                stack.clear();
            }
            if armed(mutops::CACHE_KEY_IGNORES_KIND) {
                *kind = CompilerKind::SimpleStackBased;
            }
            if armed(mutops::CACHE_KEY_IGNORES_SPECIAL_OOPS) {
                *nil = 0;
                *true_obj = 0;
                *false_obj = 0;
            }
        }
        CompileKey::Native { nil, true_obj, false_obj, .. } => {
            if armed(mutops::CACHE_KEY_IGNORES_SPECIAL_OOPS) {
                *nil = 0;
                *true_obj = 0;
                *false_obj = 0;
            }
        }
    }
    key
}

/// Everything a test compilation depends on, by value.
///
/// The receiver is *not* part of a bytecode key: it rides in the
/// calling-convention register and never reaches the generated code.
///
/// Lookups normally go through the allocation-free [`CompileKeyRef`];
/// an owned key is built only when an artifact is actually inserted.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum CompileKey {
    /// A bytecode (sequence) test compilation.
    Bytecode {
        /// Front-end tier.
        kind: CompilerKind,
        /// Target ISA.
        isa: Isa,
        /// The instruction sequence under test.
        instrs: Vec<Instruction>,
        /// Operand-stack oops embedded by `genPushLiteral`.
        stack: Vec<u32>,
        /// Temp oops materialized by the preamble.
        temps: Vec<u32>,
        /// Method literal oops.
        literals: Vec<u32>,
        /// The nil oop compiled into push-constant code.
        nil: u32,
        /// The true oop.
        true_obj: u32,
        /// The false oop.
        false_obj: u32,
    },
    /// A native-method template compilation.
    Native {
        /// Native method id.
        id: u32,
        /// Target ISA.
        isa: Isa,
        /// The nil oop.
        nil: u32,
        /// The true oop.
        true_obj: u32,
        /// The false oop.
        false_obj: u32,
    },
}

impl CompileKey {
    /// Bucket hash; must agree with [`CompileKeyRef::bucket_hash`] on
    /// equivalent keys (enforced by `ref_and_owned_lookups_agree`).
    fn bucket_hash(&self) -> u64 {
        let mut h = FxHasher64::new();
        match self {
            CompileKey::Bytecode {
                kind,
                isa,
                instrs,
                stack,
                temps,
                literals,
                nil,
                true_obj,
                false_obj,
            } => {
                0u8.hash(&mut h);
                kind.hash(&mut h);
                isa.hash(&mut h);
                instrs.as_slice().hash(&mut h);
                for part in [stack, temps, literals] {
                    part.len().hash(&mut h);
                    for v in part {
                        v.hash(&mut h);
                    }
                }
                (nil, true_obj, false_obj).hash(&mut h);
            }
            CompileKey::Native { id, isa, nil, true_obj, false_obj } => {
                1u8.hash(&mut h);
                (id, isa, nil, true_obj, false_obj).hash(&mut h);
            }
        }
        h.finish()
    }
}

/// A borrowed view of a [`CompileKey`]: the hot lookup path hashes and
/// compares the frame's own slices without allocating; the owned key
/// (three `Vec` clones) is only built on the miss path, ~3× less
/// often than lookups in a campaign sweep.
#[derive(Clone, Copy, Debug)]
pub enum CompileKeyRef<'a> {
    /// A bytecode (sequence) test compilation.
    Bytecode {
        /// Front-end tier.
        kind: CompilerKind,
        /// Target ISA.
        isa: Isa,
        /// The instruction sequence under test.
        instrs: &'a [Instruction],
        /// Operand-stack oops embedded by `genPushLiteral`.
        stack: &'a [Oop],
        /// Temp oops materialized by the preamble.
        temps: &'a [Oop],
        /// Method literal oops.
        literals: &'a [Oop],
        /// The nil oop compiled into push-constant code.
        nil: u32,
        /// The true oop.
        true_obj: u32,
        /// The false oop.
        false_obj: u32,
    },
    /// A native-method template compilation.
    Native {
        /// Native method id.
        id: u32,
        /// Target ISA.
        isa: Isa,
        /// The nil oop.
        nil: u32,
        /// The true oop.
        true_obj: u32,
        /// The false oop.
        false_obj: u32,
    },
}

impl<'a> CompileKeyRef<'a> {
    /// Applies the cache-layer mutations at the borrow level (the
    /// owned-key path applies the same ones via `mutate_key`): each
    /// drops one compile-relevant field, conflating entries that must
    /// be distinct.
    fn mutated(self) -> CompileKeyRef<'a> {
        let mut key = self;
        match &mut key {
            CompileKeyRef::Bytecode { kind, stack, nil, true_obj, false_obj, .. } => {
                if armed(mutops::CACHE_KEY_IGNORES_STACK) {
                    *stack = &[];
                }
                if armed(mutops::CACHE_KEY_IGNORES_KIND) {
                    *kind = CompilerKind::SimpleStackBased;
                }
                if armed(mutops::CACHE_KEY_IGNORES_SPECIAL_OOPS) {
                    *nil = 0;
                    *true_obj = 0;
                    *false_obj = 0;
                }
            }
            CompileKeyRef::Native { nil, true_obj, false_obj, .. } => {
                if armed(mutops::CACHE_KEY_IGNORES_SPECIAL_OOPS) {
                    *nil = 0;
                    *true_obj = 0;
                    *false_obj = 0;
                }
            }
        }
        key
    }

    /// Bucket hash; agrees with [`CompileKey::bucket_hash`] on
    /// equivalent keys.
    fn bucket_hash(&self) -> u64 {
        let mut h = FxHasher64::new();
        match *self {
            CompileKeyRef::Bytecode {
                kind,
                isa,
                instrs,
                stack,
                temps,
                literals,
                nil,
                true_obj,
                false_obj,
            } => {
                0u8.hash(&mut h);
                kind.hash(&mut h);
                isa.hash(&mut h);
                instrs.hash(&mut h);
                for part in [stack, temps, literals] {
                    part.len().hash(&mut h);
                    for o in part {
                        o.0.hash(&mut h);
                    }
                }
                (nil, true_obj, false_obj).hash(&mut h);
            }
            CompileKeyRef::Native { id, isa, nil, true_obj, false_obj } => {
                1u8.hash(&mut h);
                (id, isa, nil, true_obj, false_obj).hash(&mut h);
            }
        }
        h.finish()
    }

    /// Whether this borrowed key denotes the same compilation as the
    /// stored owned key.
    fn matches(&self, owned: &CompileKey) -> bool {
        fn oops_eq(a: &[Oop], b: &[u32]) -> bool {
            a.len() == b.len() && a.iter().zip(b).all(|(o, v)| o.0 == *v)
        }
        match (*self, owned) {
            (
                CompileKeyRef::Bytecode {
                    kind,
                    isa,
                    instrs,
                    stack,
                    temps,
                    literals,
                    nil,
                    true_obj,
                    false_obj,
                },
                CompileKey::Bytecode {
                    kind: okind,
                    isa: oisa,
                    instrs: oinstrs,
                    stack: ostack,
                    temps: otemps,
                    literals: oliterals,
                    nil: onil,
                    true_obj: otrue,
                    false_obj: ofalse,
                },
            ) => {
                kind == *okind
                    && isa == *oisa
                    && instrs == oinstrs.as_slice()
                    && oops_eq(stack, ostack)
                    && oops_eq(temps, otemps)
                    && oops_eq(literals, oliterals)
                    && (nil, true_obj, false_obj) == (*onil, *otrue, *ofalse)
            }
            (
                CompileKeyRef::Native { id, isa, nil, true_obj, false_obj },
                CompileKey::Native {
                    id: oid,
                    isa: oisa,
                    nil: onil,
                    true_obj: otrue,
                    false_obj: ofalse,
                },
            ) => (id, isa, nil, true_obj, false_obj) == (*oid, *oisa, *onil, *otrue, *ofalse),
            _ => false,
        }
    }

    /// Materializes the owned key (the only allocating step of a
    /// lookup, taken on misses).
    fn to_owned_key(self) -> CompileKey {
        match self {
            CompileKeyRef::Bytecode {
                kind,
                isa,
                instrs,
                stack,
                temps,
                literals,
                nil,
                true_obj,
                false_obj,
            } => CompileKey::Bytecode {
                kind,
                isa,
                instrs: instrs.to_vec(),
                stack: stack.iter().map(|o| o.0).collect(),
                temps: temps.iter().map(|o| o.0).collect(),
                literals: literals.iter().map(|o| o.0).collect(),
                nil,
                true_obj,
                false_obj,
            },
            CompileKeyRef::Native { id, isa, nil, true_obj, false_obj } => {
                CompileKey::Native { id, isa, nil, true_obj, false_obj }
            }
        }
    }
}

/// One cache slot: the compiled artifact (or refusal) plus the
/// predecoded execution view, built lazily on first replay — i.e.
/// strictly *after* compilation ran under whatever mutant is armed, so
/// predecoding can never mask a byte-level perturbation.
pub struct CacheEntry {
    artifact: Result<CompiledCode, CompileError>,
    predecoded: OnceLock<PredecodedCode>,
}

impl CacheEntry {
    fn new(artifact: Result<CompiledCode, CompileError>) -> CacheEntry {
        CacheEntry { artifact, predecoded: OnceLock::new() }
    }

    /// The compiled artifact, or the front-end's refusal.
    pub fn artifact(&self) -> &Result<CompiledCode, CompileError> {
        &self.artifact
    }

    /// The predecoded view of the artifact bytes (`None` for
    /// refusals), built on first use and shared by every replay.
    pub fn predecoded(&self) -> Option<&PredecodedCode> {
        let mut scratch = Duration::ZERO;
        self.predecoded_timed(&mut scratch)
    }

    /// [`CacheEntry::predecoded`], charging the one-time construction
    /// cost (zero on every later call) to `decode_time` so the
    /// campaign's `decode` sub-bucket reflects actual predecode work.
    pub fn predecoded_timed(&self, decode_time: &mut Duration) -> Option<&PredecodedCode> {
        let compiled = self.artifact.as_ref().ok()?;
        let mut built = Duration::ZERO;
        let pd = self.predecoded.get_or_init(|| {
            let t0 = Instant::now();
            let pd = PredecodedCode::new(&compiled.code, compiled.isa);
            built = t0.elapsed();
            pd
        });
        *decode_time += built;
        Some(pd)
    }
}

/// One hash bucket: entries whose keys collide on the pre-computed
/// `u64`, compared exactly on lookup (nearly always a singleton).
type CacheBucket = Vec<(CompileKey, Arc<CacheEntry>)>;

/// A concurrent cache of compiled test artifacts (including refusals),
/// shared across models, probes, paths and worker threads.
///
/// Compilation is deterministic, so cache hits return byte-identical
/// code and the campaign's outputs are unchanged by caching; the
/// `code_cache_tests` suite enforces both properties.
///
/// Entries are stored in buckets keyed by a pre-computed `u64` hash so
/// the hot path — a borrowed-key lookup — hashes borrowed slices once
/// and compares within a (nearly always singleton) bucket, without
/// ever building an owned key.
pub struct CodeCache {
    map: RwLock<HashMap<u64, CacheBucket>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    enabled: bool,
}

impl Default for CodeCache {
    fn default() -> Self {
        CodeCache::new()
    }
}

impl CodeCache {
    /// An empty, enabled cache.
    pub fn new() -> CodeCache {
        CodeCache {
            map: RwLock::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            enabled: true,
        }
    }

    /// A cache that never stores: every lookup compiles fresh and
    /// counts as a miss, keeping invocation accounting comparable in
    /// cache-on/off experiments.
    pub fn disabled() -> CodeCache {
        CodeCache { enabled: false, ..CodeCache::new() }
    }

    /// [`CodeCache::new`] or [`CodeCache::disabled`] by flag.
    pub fn with_enabled(enabled: bool) -> CodeCache {
        if enabled {
            CodeCache::new()
        } else {
            CodeCache::disabled()
        }
    }

    /// Whether lookups may hit.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Looks up the borrowed `key`, invoking `compile` on a miss. The
    /// returned entry is shared; machines borrow the artifact bytes
    /// (or the predecoded view) straight out of it.
    pub fn get_or_compile_ref(
        &self,
        key: CompileKeyRef<'_>,
        compile: impl FnOnce() -> Result<CompiledCode, CompileError>,
    ) -> Arc<CacheEntry> {
        if !self.enabled {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Arc::new(CacheEntry::new(compile()));
        }
        let key = key.mutated();
        let bucket_hash = key.bucket_hash();
        if let Some(bucket) = self.map.read().expect("code cache poisoned").get(&bucket_hash) {
            if let Some((_, entry)) = bucket.iter().find(|(stored, _)| key.matches(stored)) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(entry);
            }
        }
        // Compile outside the lock; a racing thread compiling the same
        // key produces an identical artifact (compilation is pure).
        self.misses.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(CacheEntry::new(compile()));
        let owned = key.to_owned_key();
        let mut map = self.map.write().expect("code cache poisoned");
        let bucket = map.entry(bucket_hash).or_default();
        if let Some((_, existing)) = bucket.iter().find(|(stored, _)| key.matches(stored)) {
            return Arc::clone(existing);
        }
        bucket.push((owned, Arc::clone(&entry)));
        entry
    }

    /// Owned-key lookup, for callers that already hold a
    /// [`CompileKey`] (tests, one-shot tools); the campaign's hot path
    /// uses [`CodeCache::get_or_compile_ref`].
    pub fn get_or_compile(
        &self,
        key: CompileKey,
        compile: impl FnOnce() -> Result<CompiledCode, CompileError>,
    ) -> Arc<CacheEntry> {
        if !self.enabled {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Arc::new(CacheEntry::new(compile()));
        }
        let key = mutate_key(key);
        let bucket_hash = key.bucket_hash();
        if let Some(bucket) = self.map.read().expect("code cache poisoned").get(&bucket_hash) {
            if let Some((_, entry)) = bucket.iter().find(|(stored, _)| *stored == key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(entry);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(CacheEntry::new(compile()));
        let mut map = self.map.write().expect("code cache poisoned");
        let bucket = map.entry(bucket_hash).or_default();
        if let Some((_, existing)) = bucket.iter().find(|(stored, _)| *stored == key) {
            return Arc::clone(existing);
        }
        bucket.push((key, Arc::clone(&entry)));
        entry
    }

    /// Number of lookups answered from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to compile (with caching off, every
    /// lookup).
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Seeds an artifact without touching the hit/miss counters
    /// (corpus warm-start: a preloaded artifact becomes an ordinary
    /// hit when the sweep first asks for it). The key is inserted
    /// verbatim — stored keys already carry any cache-key mutation
    /// applied when they were first compiled, and the corpus
    /// fingerprint guarantees the arming state matches. First insert
    /// wins. A disabled cache ignores preloads (by definition it
    /// never hits).
    pub fn preload(&self, key: CompileKey, artifact: Result<CompiledCode, CompileError>) {
        if !self.enabled {
            return;
        }
        let bucket_hash = key.bucket_hash();
        let mut map = self.map.write().expect("code cache poisoned");
        let bucket = map.entry(bucket_hash).or_default();
        if bucket.iter().any(|(stored, _)| *stored == key) {
            return;
        }
        bucket.push((key, Arc::new(CacheEntry::new(artifact))));
    }

    /// All stored (key, artifact) pairs, for corpus write-back. Order
    /// is unspecified (the corpus encoder canonicalizes by key); the
    /// lazily-built predecoded views are not part of the snapshot —
    /// they are derived data, rebuilt on demand after a reload.
    pub fn snapshot(&self) -> Vec<(CompileKey, Result<CompiledCode, CompileError>)> {
        self.map
            .read()
            .expect("code cache poisoned")
            .values()
            .flat_map(|bucket| bucket.iter().map(|(k, e)| (k.clone(), e.artifact().clone())))
            .collect()
    }

    /// Distinct artifacts currently stored.
    pub fn len(&self) -> usize {
        self.map.read().expect("code cache poisoned").values().map(Vec::len).sum()
    }

    /// Whether the cache holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn native_key(id: u32) -> CompileKey {
        CompileKey::Native { id, isa: Isa::X86ish, nil: 2, true_obj: 6, false_obj: 10 }
    }

    fn native_key_ref(id: u32) -> CompileKeyRef<'static> {
        CompileKeyRef::Native { id, isa: Isa::X86ish, nil: 2, true_obj: 6, false_obj: 10 }
    }

    fn fake_code(byte: u8) -> Result<CompiledCode, CompileError> {
        Ok(CompiledCode { code: vec![byte; 4], isa: Isa::X86ish, ntemps: 0 })
    }

    #[test]
    fn second_lookup_hits_and_shares_the_artifact() {
        let cache = CodeCache::new();
        let a = cache.get_or_compile(native_key(1), || fake_code(0xAA));
        let b = cache.get_or_compile(native_key(1), || panic!("must not recompile"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn distinct_keys_compile_separately() {
        let cache = CodeCache::new();
        cache.get_or_compile(native_key(1), || fake_code(1));
        cache.get_or_compile(native_key(2), || fake_code(2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn refusals_are_cached() {
        let cache = CodeCache::new();
        let key = native_key(120);
        cache.get_or_compile(key.clone(), || Err(CompileError::NotImplemented("ffi")));
        let r = cache.get_or_compile(key, || panic!("refusal must be cached"));
        assert!(matches!(r.artifact(), Err(CompileError::NotImplemented("ffi"))));
        assert_eq!(cache.hits(), 1);
        assert!(r.predecoded().is_none(), "refusals have no predecoded view");
    }

    #[test]
    fn disabled_cache_always_compiles() {
        let cache = CodeCache::disabled();
        cache.get_or_compile(native_key(1), || fake_code(1));
        cache.get_or_compile(native_key(1), || fake_code(1));
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert!(cache.is_empty());
    }

    #[test]
    fn ref_and_owned_lookups_agree() {
        use igjit_bytecode::Instruction;
        let cache = CodeCache::new();
        // Warm via the borrowed path, hit via the owned path — and the
        // same for a bytecode key, whose slice fields exercise the
        // cross-representation hash/equality contract.
        let seeded = cache.get_or_compile_ref(native_key_ref(7), || fake_code(7));
        let owned = cache.get_or_compile(native_key(7), || panic!("must hit"));
        assert!(Arc::ptr_eq(&seeded, &owned));

        let stack = [Oop(21), Oop(42)];
        let instrs = [Instruction::Add];
        let bc_ref = CompileKeyRef::Bytecode {
            kind: CompilerKind::StackToRegister,
            isa: Isa::Arm32ish,
            instrs: &instrs,
            stack: &stack,
            temps: &[],
            literals: &[],
            nil: 2,
            true_obj: 6,
            false_obj: 10,
        };
        let bc_owned = CompileKey::Bytecode {
            kind: CompilerKind::StackToRegister,
            isa: Isa::Arm32ish,
            instrs: instrs.to_vec(),
            stack: vec![21, 42],
            temps: vec![],
            literals: vec![],
            nil: 2,
            true_obj: 6,
            false_obj: 10,
        };
        assert_eq!(bc_ref.bucket_hash(), bc_owned.bucket_hash());
        assert!(bc_ref.matches(&bc_owned));
        let first = cache.get_or_compile_ref(bc_ref, || fake_code(0x42));
        let second = cache.get_or_compile(bc_owned, || panic!("must hit"));
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
    }

    #[test]
    fn ref_miss_materializes_a_key_that_later_refs_hit() {
        let stack = [Oop(8)];
        let key = CompileKeyRef::Bytecode {
            kind: CompilerKind::SimpleStackBased,
            isa: Isa::X86ish,
            instrs: &[],
            stack: &stack,
            temps: &[],
            literals: &[],
            nil: 2,
            true_obj: 6,
            false_obj: 10,
        };
        let cache = CodeCache::new();
        let a = cache.get_or_compile_ref(key, || fake_code(1));
        let b = cache.get_or_compile_ref(key, || panic!("must hit"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn predecoded_view_is_built_once_and_charged_once() {
        let cache = CodeCache::new();
        // A real Ret (opcode 0x0E) so the predecoder has something to
        // decode.
        let entry = cache.get_or_compile(native_key(1), || {
            Ok(CompiledCode { code: vec![0x0E], isa: Isa::X86ish, ntemps: 0 })
        });
        let mut first = Duration::ZERO;
        let pd = entry.predecoded_timed(&mut first).expect("artifact compiled");
        assert_eq!(pd.len(), 1);
        let mut second = Duration::ZERO;
        let again = entry.predecoded_timed(&mut second).expect("artifact compiled");
        assert!(std::ptr::eq(pd, again), "one predecode per entry");
        assert_eq!(second, Duration::ZERO, "construction charged only on first use");
    }
}
