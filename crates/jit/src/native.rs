//! The template-based native-method compiler.
//!
//! Native methods are translated to IR "using a hand-written
//! template-based approach" (§4.1). Per the §4.2 test schema, only the
//! *native behaviour* is compiled, with a breakpoint planted after it:
//! success paths return to the caller (result in the receiver/result
//! register), failure paths fall through into the `Stop`.
//!
//! This compiler carries the reproduction's compiled-side defects
//! (see DESIGN.md):
//!
//! * **missing compiled type check** — the 13 float primitives
//!   (41–53) never check the *receiver* class and unbox blindly,
//!   producing garbage floats or segmentation faults;
//! * **simulation error bait** — `primitiveFloatFractionPart` and
//!   `primitiveFloatExponent` unbox into float registers F2/F3, whose
//!   reflective setters the simulator lacks;
//! * **behavioural difference** — the bitwise primitives (14–17)
//!   accept negative operands (treating values as unsigned) where the
//!   interpreter fails into library code, and `primitiveQuo` (13)
//!   floors where the interpreter truncates;
//! * **missing functionality** — every FFI primitive (100–159)
//!   answers [`CompileError::NotImplemented`]: they were never ported
//!   to the 32-bit compiler.

use igjit_heap::{ClassIndex, ObjectFormat, Oop, HEADER_WORDS};
use igjit_machine::{AluOp, Cond, FAluOp, FReg, Isa, Reg};

use crate::backend::lower;
use crate::convention::Convention;
use crate::ir::{Ir, LabelId, VReg};
use crate::{stops, CompileError, CompiledCode};

/// Canonical objects the templates embed as constants.
#[derive(Clone, Copy, Debug)]
pub struct NativeTestInput {
    /// Canonical `nil`.
    pub nil: Oop,
    /// Canonical `true`.
    pub true_obj: Oop,
    /// Canonical `false`.
    pub false_obj: Oop,
}

const BODY_OFF: i16 = (HEADER_WORDS * 4) as i16;
const SIZE_OFF: i16 = 4;
const HASH_OFF: i16 = 8;

struct NGen {
    ir: Vec<Ir>,
    next_label: u16,
    fail: LabelId,
    conv: Convention,
    input: NativeTestInput,
}

impl NGen {
    fn new(isa: Isa, input: NativeTestInput) -> NGen {
        NGen {
            ir: Vec::new(),
            next_label: 1,
            fail: LabelId(0),
            conv: Convention::for_isa(isa),
            input,
        }
    }

    fn label(&mut self) -> LabelId {
        let l = LabelId(self.next_label);
        self.next_label += 1;
        l
    }

    fn bind(&mut self, l: LabelId) {
        self.ir.push(Ir::Label(l));
    }

    fn r(&self, n: u8) -> VReg {
        VReg::phys(Reg(n))
    }

    fn rcvr(&self) -> VReg {
        VReg::phys(self.conv.receiver)
    }

    /// Fails unless `v` is a tagged SmallInteger.
    fn check_int(&mut self, v: VReg) {
        let t = VReg::phys(self.conv.scratch);
        self.ir.push(Ir::AluImm { op: AluOp::And, dst: t, a: v, imm: 1 });
        self.ir.push(Ir::JumpCc(Cond::Eq, self.fail));
    }

    /// Fails if `v` *is* a tagged SmallInteger.
    fn check_not_int(&mut self, v: VReg) {
        let t = VReg::phys(self.conv.scratch);
        self.ir.push(Ir::AluImm { op: AluOp::And, dst: t, a: v, imm: 1 });
        self.ir.push(Ir::JumpCc(Cond::Ne, self.fail));
    }

    /// Fails unless `v` is a pointer of class `class`. Includes the
    /// immediate check.
    fn check_class(&mut self, v: VReg, class: ClassIndex) {
        self.check_not_int(v);
        let t = VReg::phys(self.conv.scratch);
        self.ir.push(Ir::Load { dst: t, base: v, off: 0 });
        self.ir.push(Ir::AluImm { op: AluOp::And, dst: t, a: t, imm: 0x00ff_ffff });
        self.ir.push(Ir::CmpImm { a: t, imm: class.value() });
        self.ir.push(Ir::JumpCc(Cond::Ne, self.fail));
    }

    /// Success epilogue: result already in the result register.
    fn ret(&mut self) {
        self.ir.push(Ir::Ret);
    }

    /// Answers a boolean from the current flags and returns.
    fn ret_bool(&mut self, cc: Cond) {
        let ltrue = self.label();
        let r0 = self.rcvr();
        self.ir.push(Ir::JumpCc(cc, ltrue));
        self.ir.push(Ir::MovImm { dst: r0, imm: self.input.false_obj.0 });
        self.ir.push(Ir::Ret);
        self.bind(ltrue);
        self.ir.push(Ir::MovImm { dst: r0, imm: self.input.true_obj.0 });
        self.ir.push(Ir::Ret);
    }

    fn untag(&mut self, dst: VReg, src: VReg) {
        self.ir.push(Ir::AluImm { op: AluOp::Sar, dst, a: src, imm: 1 });
    }

    fn retag_checked(&mut self, v: VReg) {
        let fail = self.fail;
        self.ir.push(Ir::AluImm { op: AluOp::Shl, dst: v, a: v, imm: 1 });
        self.ir.push(Ir::JumpCc(Cond::Ov, fail));
        self.ir.push(Ir::AluImm { op: AluOp::Or, dst: v, a: v, imm: 1 });
    }

    fn retag(&mut self, v: VReg) {
        self.ir.push(Ir::AluImm { op: AluOp::Shl, dst: v, a: v, imm: 1 });
        self.ir.push(Ir::AluImm { op: AluOp::Or, dst: v, a: v, imm: 1 });
    }

    /// Checked 1-based index in `idx_reg` (tagged) against the size
    /// word of `obj`; leaves the 0-based untagged index in `out`.
    fn checked_index(&mut self, obj: VReg, idx: VReg, out: VReg, size_tmp: VReg) {
        self.check_int(idx);
        self.ir.push(Ir::Load { dst: size_tmp, base: obj, off: SIZE_OFF });
        self.untag(out, idx);
        self.ir.push(Ir::CmpImm { a: out, imm: 1 });
        self.ir.push(Ir::JumpCc(Cond::Lt, self.fail));
        self.ir.push(Ir::Cmp { a: out, b: size_tmp });
        self.ir.push(Ir::JumpCc(Cond::Gt, self.fail));
        self.ir.push(Ir::AluImm { op: AluOp::Sub, dst: out, a: out, imm: 1 });
    }
}

/// Compiles the native behaviour of primitive `id` per Listing 4's
/// schema (native code, then a Stop to catch fall-through failures).
pub fn compile_native_test(
    id: igjit_bytecode_native_id::NativeMethodIdLike,
    input: NativeTestInput,
    isa: Isa,
) -> Result<CompiledCode, CompileError> {
    let mut g = NGen::new(isa, input);
    gen_native(&mut g, id.0)?;
    // Listing 4: "Generate a break instruction to detect fall-through
    // cases". All failure jumps land here.
    let fail = g.fail;
    g.bind(fail);
    g.ir.push(Ir::Stop(stops::FALL_THROUGH));
    let code = lower(&g.ir, isa)?;
    Ok(CompiledCode { code, isa, ntemps: 0 })
}

/// Tiny shim so this crate does not depend on `igjit-interp` (which
/// owns `NativeMethodId`): anything with a public `u16` id works.
pub mod igjit_bytecode_native_id {
    /// A primitive id (structurally identical to
    /// `igjit_interp::NativeMethodId`).
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub struct NativeMethodIdLike(pub u16);

    impl From<u16> for NativeMethodIdLike {
        fn from(v: u16) -> Self {
            NativeMethodIdLike(v)
        }
    }
}

fn gen_native(g: &mut NGen, id: u16) -> Result<(), CompileError> {
    match id {
        1..=17 => gen_smallint(g, id),
        40..=53 => gen_float(g, id),
        60..=80 => gen_object(g, id),
        100..=159 => Err(CompileError::NotImplemented(
            "FFI primitives were never implemented in the 32-bit compiler",
        )),
        _ => Err(CompileError::Unsupported("unknown primitive id")),
    }
}

fn gen_smallint(g: &mut NGen, id: u16) -> Result<(), CompileError> {
    let r0 = g.rcvr();
    let r1 = g.r(1);
    let t = g.r(4);
    let u = g.r(5);
    let w = g.r(2);
    let x = g.r(3);
    g.check_int(r0);
    g.check_int(r1);
    match id {
        1 => {
            // tagged(a) + (tagged(b) - 1) with the 32-bit overflow
            // check standing in for the 31-bit range check.
            g.ir.push(Ir::AluImm { op: AluOp::Sub, dst: t, a: r1, imm: 1 });
            g.ir.push(Ir::Alu { op: AluOp::Add, dst: t, a: t, b: r0 });
            g.ir.push(Ir::JumpCc(Cond::Ov, g.fail));
            g.ir.push(Ir::MovReg { dst: r0, src: t });
            g.ret();
        }
        2 => {
            g.ir.push(Ir::Alu { op: AluOp::Sub, dst: t, a: r0, b: r1 });
            g.ir.push(Ir::JumpCc(Cond::Ov, g.fail));
            g.ir.push(Ir::AluImm { op: AluOp::Add, dst: t, a: t, imm: 1 });
            g.ir.push(Ir::MovReg { dst: r0, src: t });
            g.ret();
        }
        3..=8 => {
            let cc = match id {
                3 => Cond::Lt,
                4 => Cond::Gt,
                5 => Cond::Le,
                6 => Cond::Ge,
                7 => Cond::Eq,
                _ => Cond::Ne,
            };
            g.ir.push(Ir::Cmp { a: r0, b: r1 });
            g.ret_bool(cc);
        }
        9 => {
            g.untag(t, r0);
            g.untag(u, r1);
            g.ir.push(Ir::Alu { op: AluOp::Mul, dst: t, a: t, b: u });
            g.ir.push(Ir::JumpCc(Cond::Ov, g.fail));
            g.retag_checked(t);
            g.ir.push(Ir::MovReg { dst: r0, src: t });
            g.ret();
        }
        10 => {
            // `/` — exact division only.
            g.ir.push(Ir::CmpImm { a: r1, imm: Oop::from_small_int(0).0 });
            g.ir.push(Ir::JumpCc(Cond::Eq, g.fail));
            g.untag(t, r0);
            g.untag(u, r1);
            g.ir.push(Ir::Alu { op: AluOp::Rem, dst: w, a: t, b: u });
            g.ir.push(Ir::CmpImm { a: w, imm: 0 });
            g.ir.push(Ir::JumpCc(Cond::Ne, g.fail));
            g.ir.push(Ir::Alu { op: AluOp::Div, dst: t, a: t, b: u });
            g.retag_checked(t);
            g.ir.push(Ir::MovReg { dst: r0, src: t });
            g.ret();
        }
        11..=13 => {
            // 11: floored mod. 12: floored div. 13: quo — which should
            // truncate, but this template floors: the planted
            // behavioural-difference defect.
            g.ir.push(Ir::CmpImm { a: r1, imm: Oop::from_small_int(0).0 });
            g.ir.push(Ir::JumpCc(Cond::Eq, g.fail));
            g.untag(t, r0);
            g.untag(u, r1);
            let lskip = g.label();
            if id == 11 {
                g.ir.push(Ir::Alu { op: AluOp::Rem, dst: w, a: t, b: u });
                g.ir.push(Ir::CmpImm { a: w, imm: 0 });
                g.ir.push(Ir::JumpCc(Cond::Eq, lskip));
                g.ir.push(Ir::Alu { op: AluOp::Xor, dst: x, a: w, b: u });
                g.ir.push(Ir::JumpCc(Cond::Ge, lskip));
                g.ir.push(Ir::Alu { op: AluOp::Add, dst: w, a: w, b: u });
                g.bind(lskip);
                g.retag(w);
                g.ir.push(Ir::MovReg { dst: r0, src: w });
            } else {
                g.ir.push(Ir::Alu { op: AluOp::Div, dst: w, a: t, b: u });
                g.ir.push(Ir::Alu { op: AluOp::Rem, dst: x, a: t, b: u });
                g.ir.push(Ir::CmpImm { a: x, imm: 0 });
                g.ir.push(Ir::JumpCc(Cond::Eq, lskip));
                g.ir.push(Ir::Alu { op: AluOp::Xor, dst: x, a: x, b: u });
                g.ir.push(Ir::JumpCc(Cond::Ge, lskip));
                g.ir.push(Ir::AluImm { op: AluOp::Sub, dst: w, a: w, imm: 1 });
                g.bind(lskip);
                g.retag_checked(w);
                g.ir.push(Ir::MovReg { dst: r0, src: w });
            }
            g.ret();
        }
        14 | 15 => {
            // Behavioural-difference defect: no sign checks — the
            // compiled primitive happily works on negatives.
            let op = if id == 14 { AluOp::And } else { AluOp::Or };
            g.ir.push(Ir::Alu { op, dst: t, a: r0, b: r1 });
            g.ir.push(Ir::MovReg { dst: r0, src: t });
            g.ret();
        }
        16 => {
            // Tagged XOR clears the tag bit, so untag/retag.
            g.untag(t, r0);
            g.untag(u, r1);
            g.ir.push(Ir::Alu { op: AluOp::Xor, dst: t, a: t, b: u });
            g.retag(t);
            g.ir.push(Ir::MovReg { dst: r0, src: t });
            g.ret();
        }
        17 => {
            // Unsigned shift semantics (defect): the receiver is
            // untagged with a *logical* shift, right shifts are
            // logical too.
            let lright = g.label();
            g.ir.push(Ir::AluImm { op: AluOp::Shr, dst: t, a: r0, imm: 1 });
            g.untag(u, r1);
            // Word-width guard: hardware masks counts to 31.
            g.ir.push(Ir::CmpImm { a: u, imm: 31 });
            g.ir.push(Ir::JumpCc(Cond::Gt, g.fail));
            g.ir.push(Ir::CmpImm { a: u, imm: (-31i32) as u32 });
            g.ir.push(Ir::JumpCc(Cond::Lt, g.fail));
            g.ir.push(Ir::CmpImm { a: u, imm: 0 });
            g.ir.push(Ir::JumpCc(Cond::Lt, lright));
            g.ir.push(Ir::Alu { op: AluOp::Shl, dst: t, a: t, b: u });
            g.ir.push(Ir::JumpCc(Cond::Ov, g.fail));
            g.retag_checked(t);
            g.ir.push(Ir::MovReg { dst: r0, src: t });
            g.ret();
            g.bind(lright);
            g.ir.push(Ir::MovImm { dst: w, imm: 0 });
            g.ir.push(Ir::Alu { op: AluOp::Sub, dst: w, a: w, b: u });
            g.ir.push(Ir::Alu { op: AluOp::Shr, dst: t, a: t, b: w });
            g.retag_checked(t);
            g.ir.push(Ir::MovReg { dst: r0, src: t });
            g.ret();
        }
        _ => return Err(CompileError::Unsupported("unknown SmallInteger primitive")),
    }
    Ok(())
}

fn gen_float(g: &mut NGen, id: u16) -> Result<(), CompileError> {
    let r0 = g.rcvr();
    let r1 = g.r(1);
    let t = g.r(4);
    match id {
        40 => {
            // primitiveAsFloat: the *compiled* version checks the
            // receiver type correctly — the defect is on the
            // interpreter side (Listing 5).
            g.check_int(r0);
            g.untag(t, r0);
            g.ir.push(Ir::IntToF { fd: FReg(0), src: t });
            g.ir.push(Ir::AllocFloat { dst: r0 });
            g.ret();
        }
        41 | 42 | 49 | 50 => {
            // Missing compiled type check (§5.3): the argument is
            // checked, the receiver is NOT — the unbox below reads
            // from whatever the receiver points at.
            g.check_class(r1, ClassIndex::FLOAT);
            g.ir.push(Ir::FLoad { fd: FReg(0), base: r0, off: BODY_OFF });
            g.ir.push(Ir::FLoad { fd: FReg(1), base: r1, off: BODY_OFF });
            let op = match id {
                41 => FAluOp::Add,
                42 => FAluOp::Sub,
                49 => FAluOp::Mul,
                _ => {
                    // Zero-divisor check for primitiveFloatDivide.
                    g.ir.push(Ir::MovImm { dst: t, imm: 0 });
                    g.ir.push(Ir::IntToF { fd: FReg(2), src: t });
                    g.ir.push(Ir::FCmp { fa: FReg(1), fb: FReg(2) });
                    g.ir.push(Ir::JumpCc(Cond::Eq, g.fail));
                    FAluOp::Div
                }
            };
            g.ir.push(Ir::FAlu { op, fd: FReg(0), fa: FReg(0), fb: FReg(1) });
            g.ir.push(Ir::AllocFloat { dst: r0 });
            g.ret();
        }
        43..=48 => {
            // Missing compiled receiver check, again.
            g.check_class(r1, ClassIndex::FLOAT);
            g.ir.push(Ir::FLoad { fd: FReg(0), base: r0, off: BODY_OFF });
            g.ir.push(Ir::FLoad { fd: FReg(1), base: r1, off: BODY_OFF });
            g.ir.push(Ir::FCmp { fa: FReg(0), fb: FReg(1) });
            let cc = match id {
                43 => Cond::Lt,
                44 => Cond::Gt,
                45 => Cond::Le,
                46 => Cond::Ge,
                47 => Cond::Eq,
                _ => Cond::Ne,
            };
            g.ret_bool(cc);
        }
        51 => {
            // primitiveFloatTruncated — receiver check missing.
            g.ir.push(Ir::FLoad { fd: FReg(0), base: r0, off: BODY_OFF });
            g.ir.push(Ir::FToIntChecked { dst: t, fs: FReg(0) });
            g.ir.push(Ir::JumpCc(Cond::Ov, g.fail));
            g.retag(t);
            g.ir.push(Ir::MovReg { dst: r0, src: t });
            g.ret();
        }
        52 => {
            // primitiveFloatFractionPart — receiver check missing AND
            // the template unboxes into F2, whose reflective setter
            // the simulator lacks: faulting here is a simulation
            // error, not a plain segfault.
            g.ir.push(Ir::FLoad { fd: FReg(2), base: r0, off: BODY_OFF });
            g.ir.push(Ir::FAlu { op: FAluOp::Fract, fd: FReg(0), fa: FReg(2), fb: FReg(2) });
            g.ir.push(Ir::AllocFloat { dst: r0 });
            g.ret();
        }
        53 => {
            // primitiveFloatExponent — same F3 bait.
            g.ir.push(Ir::FLoad { fd: FReg(3), base: r0, off: BODY_OFF });
            g.ir.push(Ir::FExponent { dst: t, fs: FReg(3) });
            g.retag(t);
            g.ir.push(Ir::MovReg { dst: r0, src: t });
            g.ret();
        }
        _ => return Err(CompileError::Unsupported("unknown Float primitive")),
    }
    Ok(())
}

fn gen_object(g: &mut NGen, id: u16) -> Result<(), CompileError> {
    let r0 = g.rcvr();
    let r1 = g.r(1);
    let r2 = g.r(2);
    let t = g.r(4);
    let u = g.r(5);
    let w = g.r(3);
    match id {
        60 => {
            g.check_class(r0, ClassIndex::ARRAY);
            g.checked_index(r0, r1, u, t);
            g.ir.push(Ir::AluImm { op: AluOp::Shl, dst: u, a: u, imm: 2 });
            g.ir.push(Ir::Alu { op: AluOp::Add, dst: u, a: u, b: r0 });
            g.ir.push(Ir::Load { dst: r0, base: u, off: BODY_OFF });
            g.ret();
        }
        61 => {
            g.check_class(r0, ClassIndex::ARRAY);
            g.checked_index(r0, r1, u, t);
            g.ir.push(Ir::AluImm { op: AluOp::Shl, dst: u, a: u, imm: 2 });
            g.ir.push(Ir::Alu { op: AluOp::Add, dst: u, a: u, b: r0 });
            g.ir.push(Ir::Store { src: r2, base: u, off: BODY_OFF });
            g.ir.push(Ir::MovReg { dst: r0, src: r2 });
            g.ret();
        }
        62 => {
            let lbytes = g.label();
            let lgot = g.label();
            g.check_not_int(r0);
            g.ir.push(Ir::Load { dst: t, base: r0, off: 0 });
            g.ir.push(Ir::AluImm { op: AluOp::And, dst: t, a: t, imm: 0x00ff_ffff });
            g.ir.push(Ir::CmpImm { a: t, imm: ClassIndex::ARRAY.value() });
            g.ir.push(Ir::JumpCc(Cond::Ne, lbytes));
            g.ir.push(Ir::Load { dst: u, base: r0, off: SIZE_OFF });
            g.ir.push(Ir::Jump(lgot));
            g.bind(lbytes);
            g.ir.push(Ir::CmpImm { a: t, imm: ClassIndex::BYTE_ARRAY.value() });
            let lstr = g.label();
            g.ir.push(Ir::JumpCc(Cond::Ne, lstr));
            g.ir.push(Ir::Load { dst: u, base: r0, off: SIZE_OFF });
            g.ir.push(Ir::Jump(lgot));
            g.bind(lstr);
            g.ir.push(Ir::CmpImm { a: t, imm: ClassIndex::STRING.value() });
            g.ir.push(Ir::JumpCc(Cond::Ne, g.fail));
            g.ir.push(Ir::Load { dst: u, base: r0, off: SIZE_OFF });
            g.bind(lgot);
            g.retag(u);
            g.ir.push(Ir::MovReg { dst: r0, src: u });
            g.ret();
        }
        63 | 66 => {
            let class = if id == 63 { ClassIndex::STRING } else { ClassIndex::BYTE_ARRAY };
            g.check_class(r0, class);
            g.checked_index(r0, r1, u, t);
            // word = mem[rcvr + BODY + (i0 & ~3)]
            g.ir.push(Ir::AluImm { op: AluOp::And, dst: t, a: u, imm: 0xffff_fffc });
            g.ir.push(Ir::Alu { op: AluOp::Add, dst: t, a: t, b: r0 });
            g.ir.push(Ir::Load { dst: t, base: t, off: BODY_OFF });
            // shift = (i0 & 3) * 8
            g.ir.push(Ir::AluImm { op: AluOp::And, dst: u, a: u, imm: 3 });
            g.ir.push(Ir::AluImm { op: AluOp::Shl, dst: u, a: u, imm: 3 });
            g.ir.push(Ir::Alu { op: AluOp::Shr, dst: t, a: t, b: u });
            g.ir.push(Ir::AluImm { op: AluOp::And, dst: t, a: t, imm: 0xff });
            g.retag(t);
            g.ir.push(Ir::MovReg { dst: r0, src: t });
            g.ret();
        }
        64 | 67 => {
            let class = if id == 64 { ClassIndex::STRING } else { ClassIndex::BYTE_ARRAY };
            g.check_class(r0, class);
            g.checked_index(r0, r1, u, t);
            // The stored value must be a byte-ranged SmallInteger.
            g.check_int(r2);
            g.untag(w, r2);
            g.ir.push(Ir::CmpImm { a: w, imm: 0 });
            g.ir.push(Ir::JumpCc(Cond::Lt, g.fail));
            g.ir.push(Ir::CmpImm { a: w, imm: 255 });
            g.ir.push(Ir::JumpCc(Cond::Gt, g.fail));
            // Read-modify-write the word.
            g.ir.push(Ir::AluImm { op: AluOp::And, dst: t, a: u, imm: 0xffff_fffc });
            g.ir.push(Ir::Alu { op: AluOp::Add, dst: t, a: t, b: r0 });
            // shift = (i0 & 3) * 8
            g.ir.push(Ir::AluImm { op: AluOp::And, dst: u, a: u, imm: 3 });
            g.ir.push(Ir::AluImm { op: AluOp::Shl, dst: u, a: u, imm: 3 });
            // mask = ~(0xff << shift); value = byte << shift
            let r6 = g.r(6);
            g.ir.push(Ir::MovImm { dst: r6, imm: 0xff });
            g.ir.push(Ir::Alu { op: AluOp::Shl, dst: r6, a: r6, b: u });
            g.ir.push(Ir::Alu { op: AluOp::Shl, dst: w, a: w, b: u });
            g.ir.push(Ir::AluImm { op: AluOp::Xor, dst: r6, a: r6, imm: 0xffff_ffff });
            // word = (mem[t] & mask) | value
            g.ir.push(Ir::Load { dst: u, base: t, off: BODY_OFF });
            g.ir.push(Ir::Alu { op: AluOp::And, dst: u, a: u, b: r6 });
            g.ir.push(Ir::Alu { op: AluOp::Or, dst: u, a: u, b: w });
            g.ir.push(Ir::Store { src: u, base: t, off: BODY_OFF });
            g.ir.push(Ir::MovReg { dst: r0, src: r2 });
            g.ret();
        }
        65 => {
            g.check_class(r0, ClassIndex::STRING);
            g.ir.push(Ir::Load { dst: u, base: r0, off: SIZE_OFF });
            g.retag(u);
            g.ir.push(Ir::MovReg { dst: r0, src: u });
            g.ret();
        }
        68 | 74 => {
            // objectAt: / instVarAt: — raw slot access on any
            // pointer-format object (formats 1, 2 and 6).
            g.check_not_int(r0);
            g.ir.push(Ir::Load { dst: t, base: r0, off: 0 });
            g.ir.push(Ir::AluImm { op: AluOp::Shr, dst: t, a: t, imm: 24 });
            let lok = g.label();
            let lok2 = g.label();
            g.ir.push(Ir::CmpImm { a: t, imm: ObjectFormat::Fixed.to_bits() });
            g.ir.push(Ir::JumpCc(Cond::Eq, lok));
            g.ir.push(Ir::CmpImm { a: t, imm: ObjectFormat::Indexable.to_bits() });
            g.ir.push(Ir::JumpCc(Cond::Eq, lok));
            g.ir.push(Ir::CmpImm { a: t, imm: ObjectFormat::CompiledMethod.to_bits() });
            g.ir.push(Ir::JumpCc(Cond::Ne, g.fail));
            g.bind(lok);
            g.ir.push(Ir::Jump(lok2));
            g.bind(lok2);
            g.checked_index(r0, r1, u, t);
            g.ir.push(Ir::AluImm { op: AluOp::Shl, dst: u, a: u, imm: 2 });
            g.ir.push(Ir::Alu { op: AluOp::Add, dst: u, a: u, b: r0 });
            g.ir.push(Ir::Load { dst: r0, base: u, off: BODY_OFF });
            g.ret();
        }
        69 | 75 => {
            g.check_not_int(r0);
            g.ir.push(Ir::Load { dst: t, base: r0, off: 0 });
            g.ir.push(Ir::AluImm { op: AluOp::Shr, dst: t, a: t, imm: 24 });
            let lok = g.label();
            g.ir.push(Ir::CmpImm { a: t, imm: ObjectFormat::Fixed.to_bits() });
            g.ir.push(Ir::JumpCc(Cond::Eq, lok));
            g.ir.push(Ir::CmpImm { a: t, imm: ObjectFormat::Indexable.to_bits() });
            g.ir.push(Ir::JumpCc(Cond::Eq, lok));
            g.ir.push(Ir::CmpImm { a: t, imm: ObjectFormat::CompiledMethod.to_bits() });
            g.ir.push(Ir::JumpCc(Cond::Ne, g.fail));
            g.bind(lok);
            g.checked_index(r0, r1, u, t);
            g.ir.push(Ir::AluImm { op: AluOp::Shl, dst: u, a: u, imm: 2 });
            g.ir.push(Ir::Alu { op: AluOp::Add, dst: u, a: u, b: r0 });
            g.ir.push(Ir::Store { src: r2, base: u, off: BODY_OFF });
            g.ir.push(Ir::MovReg { dst: r0, src: r2 });
            g.ret();
        }
        70 => {
            // basicNew — receiver is a class index in 1..=64.
            g.check_int(r0);
            g.untag(t, r0);
            g.ir.push(Ir::CmpImm { a: t, imm: 1 });
            g.ir.push(Ir::JumpCc(Cond::Lt, g.fail));
            g.ir.push(Ir::CmpImm { a: t, imm: 64 });
            g.ir.push(Ir::JumpCc(Cond::Gt, g.fail));
            g.ir.push(Ir::MovImm { dst: u, imm: 0 });
            g.ir.push(Ir::AllocObject {
                reg: u,
                class: ClassIndex::OBJECT.value(),
                format: ObjectFormat::Fixed.to_bits(),
            });
            g.ir.push(Ir::MovReg { dst: r0, src: u });
            g.ret();
        }
        71 => {
            g.check_int(r0);
            g.untag(t, r0);
            g.ir.push(Ir::CmpImm { a: t, imm: 1 });
            g.ir.push(Ir::JumpCc(Cond::Lt, g.fail));
            g.ir.push(Ir::CmpImm { a: t, imm: 64 });
            g.ir.push(Ir::JumpCc(Cond::Gt, g.fail));
            g.check_int(r1);
            g.untag(u, r1);
            g.ir.push(Ir::CmpImm { a: u, imm: 0 });
            g.ir.push(Ir::JumpCc(Cond::Lt, g.fail));
            g.ir.push(Ir::CmpImm { a: u, imm: 100_000 });
            g.ir.push(Ir::JumpCc(Cond::Gt, g.fail));
            g.ir.push(Ir::AllocObject {
                reg: u,
                class: ClassIndex::ARRAY.value(),
                format: ObjectFormat::Indexable.to_bits(),
            });
            g.ir.push(Ir::MovReg { dst: r0, src: u });
            g.ret();
        }
        72 => {
            g.check_class(r0, ClassIndex::WORD_ARRAY);
            g.checked_index(r0, r1, u, t);
            g.ir.push(Ir::AluImm { op: AluOp::Shl, dst: u, a: u, imm: 2 });
            g.ir.push(Ir::Alu { op: AluOp::Add, dst: u, a: u, b: r0 });
            g.ir.push(Ir::Load { dst: t, base: u, off: BODY_OFF });
            g.retag_checked(t);
            g.ir.push(Ir::MovReg { dst: r0, src: t });
            g.ret();
        }
        73 => {
            g.check_class(r0, ClassIndex::WORD_ARRAY);
            g.checked_index(r0, r1, u, t);
            g.check_int(r2);
            g.untag(w, r2);
            g.ir.push(Ir::CmpImm { a: w, imm: 0 });
            g.ir.push(Ir::JumpCc(Cond::Lt, g.fail));
            g.ir.push(Ir::AluImm { op: AluOp::Shl, dst: u, a: u, imm: 2 });
            g.ir.push(Ir::Alu { op: AluOp::Add, dst: u, a: u, b: r0 });
            g.ir.push(Ir::Store { src: w, base: u, off: BODY_OFF });
            g.ir.push(Ir::MovReg { dst: r0, src: r2 });
            g.ret();
        }
        76 => {
            // identityHash — SmallIntegers answer themselves.
            let lptr = g.label();
            g.ir.push(Ir::AluImm { op: AluOp::And, dst: t, a: r0, imm: 1 });
            g.ir.push(Ir::JumpCc(Cond::Eq, lptr));
            g.ret();
            g.bind(lptr);
            g.ir.push(Ir::Load { dst: t, base: r0, off: HASH_OFF });
            g.retag(t);
            g.ir.push(Ir::MovReg { dst: r0, src: t });
            g.ret();
        }
        77 => {
            let lptr = g.label();
            g.ir.push(Ir::AluImm { op: AluOp::And, dst: t, a: r0, imm: 1 });
            g.ir.push(Ir::JumpCc(Cond::Eq, lptr));
            g.ir.push(Ir::MovImm {
                dst: r0,
                imm: Oop::from_small_int(i64::from(ClassIndex::SMALL_INTEGER.value())).0,
            });
            g.ret();
            g.bind(lptr);
            g.ir.push(Ir::Load { dst: t, base: r0, off: 0 });
            g.ir.push(Ir::AluImm { op: AluOp::And, dst: t, a: t, imm: 0x00ff_ffff });
            g.retag(t);
            g.ir.push(Ir::MovReg { dst: r0, src: t });
            g.ret();
        }
        78 | 79 => {
            g.ir.push(Ir::Cmp { a: r0, b: r1 });
            g.ret_bool(if id == 78 { Cond::Eq } else { Cond::Ne });
        }
        80 => {
            // shallowCopy — immediates answer themselves; Arrays are
            // copied with an inline loop; everything else fails back.
            let lptr = g.label();
            g.ir.push(Ir::AluImm { op: AluOp::And, dst: t, a: r0, imm: 1 });
            g.ir.push(Ir::JumpCc(Cond::Eq, lptr));
            g.ret();
            g.bind(lptr);
            g.check_class(r0, ClassIndex::ARRAY);
            g.ir.push(Ir::Load { dst: u, base: r0, off: SIZE_OFF });
            g.ir.push(Ir::AllocObject {
                reg: u,
                class: ClassIndex::ARRAY.value(),
                format: ObjectFormat::Indexable.to_bits(),
            });
            // u = fresh array; copy loop with index in w.
            let lloop = g.label();
            let ldone = g.label();
            let r6 = g.r(6);
            g.ir.push(Ir::Load { dst: t, base: u, off: SIZE_OFF });
            g.ir.push(Ir::MovImm { dst: w, imm: 0 });
            g.bind(lloop);
            g.ir.push(Ir::Cmp { a: w, b: t });
            g.ir.push(Ir::JumpCc(Cond::Ge, ldone));
            // r6 = rcvr[w]; copy[w] = r6
            g.ir.push(Ir::AluImm { op: AluOp::Shl, dst: r6, a: w, imm: 2 });
            g.ir.push(Ir::Alu { op: AluOp::Add, dst: r6, a: r6, b: r0 });
            g.ir.push(Ir::Load { dst: r6, base: r6, off: BODY_OFF });
            let r1t = g.r(1);
            g.ir.push(Ir::AluImm { op: AluOp::Shl, dst: r1t, a: w, imm: 2 });
            g.ir.push(Ir::Alu { op: AluOp::Add, dst: r1t, a: r1t, b: u });
            g.ir.push(Ir::Store { src: r6, base: r1t, off: BODY_OFF });
            g.ir.push(Ir::AluImm { op: AluOp::Add, dst: w, a: w, imm: 1 });
            g.ir.push(Ir::Jump(lloop));
            g.bind(ldone);
            g.ir.push(Ir::MovReg { dst: r0, src: u });
            g.ret();
        }
        _ => return Err(CompileError::Unsupported("unknown Object primitive")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::igjit_bytecode_native_id::NativeMethodIdLike;
    use super::*;
    use igjit_heap::ObjectMemory;
    use igjit_machine::{Machine, MachineConfig, MachineOutcome};

    fn run_native_test(
        id: u16,
        isa: Isa,
        mem: &mut ObjectMemory,
        receiver: Oop,
        args: &[Oop],
    ) -> (MachineOutcome, Oop) {
        let input = NativeTestInput {
            nil: mem.nil(),
            true_obj: mem.true_object(),
            false_obj: mem.false_object(),
        };
        let compiled = compile_native_test(NativeMethodIdLike(id), input, isa).unwrap();
        let conv = Convention::for_isa(isa);
        let mut m = Machine::new(mem, isa, &compiled.code);
        m.set_reg(conv.receiver, receiver.0);
        for (i, a) in args.iter().enumerate() {
            m.set_reg(conv.arg(i), a.0);
        }
        let out = m.run(MachineConfig::default());
        let result = Oop(m.reg(conv.receiver));
        (out, result)
    }

    fn si(v: i64) -> Oop {
        Oop::from_small_int(v)
    }

    #[test]
    fn add_succeeds_and_overflows() {
        for isa in [Isa::X86ish, Isa::Arm32ish] {
            let mut mem = ObjectMemory::new();
            let (out, r) = run_native_test(1, isa, &mut mem, si(20), &[si(22)]);
            assert_eq!(out, MachineOutcome::ReturnedToCaller, "{isa:?}");
            assert_eq!(r, si(42), "{isa:?}");
            let (out, _) =
                run_native_test(1, isa, &mut mem, si(igjit_heap::SMALL_INT_MAX), &[si(1)]);
            assert_eq!(out, MachineOutcome::Breakpoint { code: stops::FALL_THROUGH });
        }
    }

    #[test]
    fn type_checks_fall_through() {
        let mut mem = ObjectMemory::new();
        let arr = mem.instantiate_array(&[]).unwrap();
        let (out, _) = run_native_test(1, Isa::X86ish, &mut mem, arr, &[si(1)]);
        assert_eq!(out, MachineOutcome::Breakpoint { code: stops::FALL_THROUGH });
    }

    #[test]
    fn comparisons_answer_booleans() {
        let mut mem = ObjectMemory::new();
        let t = mem.true_object();
        let f = mem.false_object();
        let (_, r) = run_native_test(3, Isa::Arm32ish, &mut mem, si(1), &[si(2)]);
        assert_eq!(r, t);
        let (_, r) = run_native_test(4, Isa::X86ish, &mut mem, si(1), &[si(2)]);
        assert_eq!(r, f);
    }

    #[test]
    fn bitwise_accepts_negatives_unlike_the_interpreter() {
        // The behavioural-difference defect, compiled side: succeeds
        // where the interpreter fails.
        let mut mem = ObjectMemory::new();
        let (out, r) = run_native_test(14, Isa::X86ish, &mut mem, si(-1), &[si(6)]);
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_eq!(r, si(6), "-1 & 6 == 6");
        let (out, r) = run_native_test(16, Isa::Arm32ish, &mut mem, si(-4), &[si(3)]);
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_eq!(r.small_int_value(), -4 ^ 3);
    }

    #[test]
    fn quo_floors_instead_of_truncating() {
        // Defect: -7 quo: 2 should be -3 (truncated); the compiled
        // template floors to -4.
        let mut mem = ObjectMemory::new();
        let (out, r) = run_native_test(13, Isa::X86ish, &mut mem, si(-7), &[si(2)]);
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_eq!(r, si(-4), "floored, not truncated — the planted defect");
    }

    #[test]
    fn float_add_with_correct_operands() {
        let mut mem = ObjectMemory::new();
        let a = mem.instantiate_float(1.5).unwrap();
        let b = mem.instantiate_float(2.25).unwrap();
        let (out, r) = run_native_test(41, Isa::X86ish, &mut mem, a, &[b]);
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_eq!(mem.float_value_of(r).unwrap(), 3.75);
    }

    #[test]
    fn float_add_missing_receiver_check_segfaults() {
        // SmallInteger receiver → unbox from a garbage address →
        // simulated segmentation fault (missing compiled type check).
        let mut mem = ObjectMemory::new();
        let b = mem.instantiate_float(2.0).unwrap();
        let (out, _) = run_native_test(41, Isa::Arm32ish, &mut mem, si(3), &[b]);
        assert!(matches!(out, MachineOutcome::MemoryFault { .. }), "{out:?}");
    }

    #[test]
    fn float_add_wrong_pointer_receiver_is_garbage_success() {
        // An Array receiver unboxes its slots as float bits: no fault,
        // just a wrong result — the other face of the same defect.
        let mut mem = ObjectMemory::new();
        let arr = mem.instantiate_array(&[si(1), si(2)]).unwrap();
        let b = mem.instantiate_float(2.0).unwrap();
        let (out, _) = run_native_test(41, Isa::X86ish, &mut mem, arr, &[b]);
        assert_eq!(out, MachineOutcome::ReturnedToCaller, "garbage success");
    }

    #[test]
    fn fraction_part_and_exponent_trip_the_simulation_error() {
        for (id, reg) in [(52u16, "F2"), (53, "F3")] {
            let mut mem = ObjectMemory::new();
            let (out, _) = run_native_test(id, Isa::X86ish, &mut mem, si(3), &[]);
            assert_eq!(
                out,
                MachineOutcome::SimulationError { register: reg.into() },
                "primitive {id}"
            );
        }
    }

    #[test]
    fn as_float_checks_receiver_in_compiled_code() {
        // Compiled side is correct; the defect is the interpreter's.
        let mut mem = ObjectMemory::new();
        let arr = mem.instantiate_array(&[]).unwrap();
        let (out, _) = run_native_test(40, Isa::X86ish, &mut mem, arr, &[]);
        assert_eq!(out, MachineOutcome::Breakpoint { code: stops::FALL_THROUGH });
        let (out, r) = run_native_test(40, Isa::Arm32ish, &mut mem, si(7), &[]);
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_eq!(mem.float_value_of(r).unwrap(), 7.0);
    }

    #[test]
    fn array_at_and_at_put() {
        let mut mem = ObjectMemory::new();
        let arr = mem.instantiate_array(&[si(10), si(20)]).unwrap();
        let (out, r) = run_native_test(60, Isa::X86ish, &mut mem, arr, &[si(2)]);
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_eq!(r, si(20));
        let (out, _) = run_native_test(60, Isa::X86ish, &mut mem, arr, &[si(3)]);
        assert_eq!(out, MachineOutcome::Breakpoint { code: stops::FALL_THROUGH });
        let (out, r) = run_native_test(61, Isa::Arm32ish, &mut mem, arr, &[si(1), si(99)]);
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_eq!(r, si(99));
        assert_eq!(mem.fetch_pointer(arr, 0).unwrap(), si(99));
    }

    #[test]
    fn byte_accessors_roundtrip() {
        let mut mem = ObjectMemory::new();
        let bytes = mem.instantiate_bytes(ClassIndex::BYTE_ARRAY, &[5, 6, 7]).unwrap();
        let (out, r) = run_native_test(66, Isa::X86ish, &mut mem, bytes, &[si(3)]);
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_eq!(r, si(7));
        let (out, _) = run_native_test(67, Isa::Arm32ish, &mut mem, bytes, &[si(2), si(200)]);
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_eq!(mem.fetch_byte(bytes, 1).unwrap(), 200);
        // Byte range check.
        let (out, _) = run_native_test(67, Isa::X86ish, &mut mem, bytes, &[si(1), si(256)]);
        assert_eq!(out, MachineOutcome::Breakpoint { code: stops::FALL_THROUGH });
    }

    #[test]
    fn size_and_string_size() {
        let mut mem = ObjectMemory::new();
        let arr = mem.instantiate_array(&[si(1), si(2), si(3)]).unwrap();
        let s = mem.instantiate_bytes(ClassIndex::STRING, b"abcd").unwrap();
        let (_, r) = run_native_test(62, Isa::X86ish, &mut mem, arr, &[]);
        assert_eq!(r, si(3));
        let (_, r) = run_native_test(62, Isa::Arm32ish, &mut mem, s, &[]);
        assert_eq!(r, si(4));
        let (_, r) = run_native_test(65, Isa::X86ish, &mut mem, s, &[]);
        assert_eq!(r, si(4));
    }

    #[test]
    fn identity_and_hash() {
        let mut mem = ObjectMemory::new();
        let t = mem.true_object();
        let a = mem.instantiate_array(&[]).unwrap();
        let (_, r) = run_native_test(78, Isa::X86ish, &mut mem, a, &[a]);
        assert_eq!(r, t);
        let (out, r) = run_native_test(76, Isa::Arm32ish, &mut mem, a, &[]);
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_eq!(r.small_int_value(), i64::from(mem.identity_hash(a).unwrap()));
        let (_, r) = run_native_test(76, Isa::X86ish, &mut mem, si(5), &[]);
        assert_eq!(r, si(5), "SmallInteger hash is the value itself");
    }

    #[test]
    fn new_with_arg_allocates() {
        let mut mem = ObjectMemory::new();
        let class = si(i64::from(ClassIndex::ARRAY.value()));
        let (out, r) = run_native_test(71, Isa::X86ish, &mut mem, class, &[si(5)]);
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_eq!(mem.slot_count(r).unwrap(), 5);
        let (out, _) = run_native_test(71, Isa::X86ish, &mut mem, class, &[si(-1)]);
        assert_eq!(out, MachineOutcome::Breakpoint { code: stops::FALL_THROUGH });
    }

    #[test]
    fn shallow_copy_duplicates_arrays() {
        let mut mem = ObjectMemory::new();
        let arr = mem.instantiate_array(&[si(7), si(8)]).unwrap();
        let (out, copy) = run_native_test(80, Isa::Arm32ish, &mut mem, arr, &[]);
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_ne!(copy, arr);
        assert_eq!(mem.fetch_pointer(copy, 0).unwrap(), si(7));
        assert_eq!(mem.fetch_pointer(copy, 1).unwrap(), si(8));
        let (out, r) = run_native_test(80, Isa::X86ish, &mut mem, si(5), &[]);
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_eq!(r, si(5));
    }

    #[test]
    fn ffi_primitives_are_not_implemented() {
        let mem = ObjectMemory::new();
        let input = NativeTestInput {
            nil: mem.nil(),
            true_obj: mem.true_object(),
            false_obj: mem.false_object(),
        };
        for id in [100u16, 120, 136, 159] {
            assert!(matches!(
                compile_native_test(NativeMethodIdLike(id), input, Isa::X86ish),
                Err(CompileError::NotImplemented(_))
            ));
        }
    }

    #[test]
    fn division_templates() {
        let mut mem = ObjectMemory::new();
        // primitiveDivide (10): exact only.
        let (out, r) = run_native_test(10, Isa::X86ish, &mut mem, si(12), &[si(4)]);
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_eq!(r, si(3));
        let (out, _) = run_native_test(10, Isa::Arm32ish, &mut mem, si(12), &[si(5)]);
        assert_eq!(out, MachineOutcome::Breakpoint { code: stops::FALL_THROUGH });
        let (out, _) = run_native_test(10, Isa::X86ish, &mut mem, si(12), &[si(0)]);
        assert_eq!(out, MachineOutcome::Breakpoint { code: stops::FALL_THROUGH });
        // primitiveMod (11): floored.
        let (_, r) = run_native_test(11, Isa::Arm32ish, &mut mem, si(-7), &[si(3)]);
        assert_eq!(r, si(2));
        let (_, r) = run_native_test(11, Isa::X86ish, &mut mem, si(-7), &[si(-3)]);
        assert_eq!(r, si(-1));
        // primitiveDiv (12): floored.
        let (_, r) = run_native_test(12, Isa::X86ish, &mut mem, si(-7), &[si(3)]);
        assert_eq!(r, si(-3));
        let (_, r) = run_native_test(12, Isa::Arm32ish, &mut mem, si(7), &[si(-3)]);
        assert_eq!(r, si(-3));
    }

    #[test]
    fn comparison_templates_all_ops() {
        let mut mem = ObjectMemory::new();
        let t = mem.true_object();
        let f = mem.false_object();
        // (id, a, b, expected)
        for (id, a, b, expect_true) in [
            (3u16, 1i64, 2i64, true),   // <
            (4, 1, 2, false),           // >
            (5, 2, 2, true),            // <=
            (6, 1, 2, false),           // >=
            (7, -3, -3, true),          // =
            (8, -3, -3, false),         // ~=
        ] {
            let (out, r) = run_native_test(id, Isa::Arm32ish, &mut mem, si(a), &[si(b)]);
            assert_eq!(out, MachineOutcome::ReturnedToCaller, "prim {id}");
            assert_eq!(r, if expect_true { t } else { f }, "prim {id} {a} {b}");
        }
    }

    #[test]
    fn object_at_and_inst_var_templates() {
        let mut mem = ObjectMemory::new();
        let arr = mem.instantiate_array(&[si(5), si(6)]).unwrap();
        // objectAt: raw 1-based slot access.
        let (out, r) = run_native_test(68, Isa::X86ish, &mut mem, arr, &[si(2)]);
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_eq!(r, si(6));
        // instVarAt:put: writes through.
        let (out, _) = run_native_test(75, Isa::Arm32ish, &mut mem, arr, &[si(1), si(42)]);
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_eq!(mem.fetch_pointer(arr, 0).unwrap(), si(42));
        // Bounds and type failures fall through.
        let (out, _) = run_native_test(68, Isa::X86ish, &mut mem, arr, &[si(3)]);
        assert_eq!(out, MachineOutcome::Breakpoint { code: stops::FALL_THROUGH });
        let (out, _) = run_native_test(68, Isa::X86ish, &mut mem, si(1), &[si(1)]);
        assert_eq!(out, MachineOutcome::Breakpoint { code: stops::FALL_THROUGH });
        // Byte objects have no pointer slots: fail.
        let bytes = mem.instantiate_bytes(ClassIndex::BYTE_ARRAY, &[1]).unwrap();
        let (out, _) = run_native_test(68, Isa::Arm32ish, &mut mem, bytes, &[si(1)]);
        assert_eq!(out, MachineOutcome::Breakpoint { code: stops::FALL_THROUGH });
    }

    #[test]
    fn basic_new_template() {
        let mut mem = ObjectMemory::new();
        let class = si(i64::from(ClassIndex::OBJECT.value()));
        let (out, r) = run_native_test(70, Isa::X86ish, &mut mem, class, &[]);
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_eq!(mem.class_index_of(r), ClassIndex::OBJECT);
        // Class index out of range fails.
        let (out, _) = run_native_test(70, Isa::Arm32ish, &mut mem, si(0), &[]);
        assert_eq!(out, MachineOutcome::Breakpoint { code: stops::FALL_THROUGH });
        let (out, _) = run_native_test(70, Isa::X86ish, &mut mem, si(65), &[]);
        assert_eq!(out, MachineOutcome::Breakpoint { code: stops::FALL_THROUGH });
    }

    #[test]
    fn float_comparisons_with_valid_operands() {
        let mut mem = ObjectMemory::new();
        let t = mem.true_object();
        let a = mem.instantiate_float(1.5).unwrap();
        let b = mem.instantiate_float(2.5).unwrap();
        for (id, expect_true) in [(43u16, true), (44, false), (45, true), (46, false),
                                  (47, false), (48, true)] {
            let (out, r) = run_native_test(id, Isa::X86ish, &mut mem, a, &[b]);
            assert_eq!(out, MachineOutcome::ReturnedToCaller, "prim {id}");
            assert_eq!(r == t, expect_true, "prim {id}");
        }
    }

    #[test]
    fn float_truncated_template() {
        let mut mem = ObjectMemory::new();
        let f = mem.instantiate_float(-3.75).unwrap();
        let (out, r) = run_native_test(51, Isa::Arm32ish, &mut mem, f, &[]);
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_eq!(r, si(-3), "truncation toward zero");
        let big = mem.instantiate_float(1e18).unwrap();
        let (out, _) = run_native_test(51, Isa::X86ish, &mut mem, big, &[]);
        assert_eq!(out, MachineOutcome::Breakpoint { code: stops::FALL_THROUGH });
    }

    #[test]
    fn word_array_access() {
        let mut mem = ObjectMemory::new();
        let w = mem
            .allocate(ClassIndex::WORD_ARRAY, igjit_heap::ObjectFormat::Words, 2)
            .unwrap();
        mem.store_word(w, 0, 77).unwrap();
        let (out, r) = run_native_test(72, Isa::X86ish, &mut mem, w, &[si(1)]);
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_eq!(r, si(77));
        let (out, _) = run_native_test(73, Isa::Arm32ish, &mut mem, w, &[si(2), si(123)]);
        assert_eq!(out, MachineOutcome::ReturnedToCaller);
        assert_eq!(mem.fetch_word(w, 1).unwrap(), 123);
    }
}
