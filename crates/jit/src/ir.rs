//! The CogRTL-flavoured intermediate representation.
//!
//! The IR is a linear instruction list over [`VReg`]s. Values below
//! [`VReg::FIRST_VIRTUAL`] are *precolored* — they denote the physical
//! register of the same number (fixed-role registers of the
//! convention). The `RegisterAllocating` front-end emits virtual
//! registers and runs linear scan; the other front-ends emit
//! precolored registers only, exactly like the corresponding Cogit
//! tiers.

use igjit_machine::{AluOp, Cond, FReg, Reg};

/// Selector id used for the `mustBeBoolean` error send.
pub const MUST_BE_BOOLEAN_SELECTOR: u32 = 0xFFFF_FFFF;

/// A virtual (or precolored) register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VReg(pub u16);

impl VReg {
    /// Ids below this denote physical registers directly.
    pub const FIRST_VIRTUAL: u16 = 32;

    /// Precolors a physical register.
    pub fn phys(r: Reg) -> VReg {
        VReg(u16::from(r.0))
    }

    /// The physical register, when precolored.
    pub fn as_phys(self) -> Option<Reg> {
        if self.0 < Self::FIRST_VIRTUAL {
            Some(Reg(self.0 as u8))
        } else {
            None
        }
    }

    /// Whether this is a virtual register needing allocation.
    pub fn is_virtual(self) -> bool {
        self.0 >= Self::FIRST_VIRTUAL
    }
}

/// A label within one IR sequence.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LabelId(pub u16);

/// One IR operation.
#[derive(Clone, Copy, PartialEq, Debug)]
#[allow(missing_docs)]
pub enum Ir {
    /// Binds a label at this position.
    Label(LabelId),
    MovImm { dst: VReg, imm: u32 },
    MovReg { dst: VReg, src: VReg },
    Load { dst: VReg, base: VReg, off: i16 },
    Store { src: VReg, base: VReg, off: i16 },
    Push { src: VReg },
    Pop { dst: VReg },
    Alu { op: AluOp, dst: VReg, a: VReg, b: VReg },
    AluImm { op: AluOp, dst: VReg, a: VReg, imm: u32 },
    Cmp { a: VReg, b: VReg },
    CmpImm { a: VReg, imm: u32 },
    Jump(LabelId),
    JumpCc(Cond, LabelId),
    /// Message-send runtime call; receiver/args must already sit in
    /// the convention registers. Halts the simulated machine.
    Send { selector_id: u32 },
    /// Allocate a boxed float from F0 into `dst` (must be precolored).
    AllocFloat { dst: VReg },
    /// Allocate `class`/`format` with the untagged size read from
    /// `reg`, which receives the oop (must be precolored).
    AllocObject { reg: VReg, class: u32, format: u32 },
    Ret,
    /// Breakpoint with a code (§4.2's Stop instruction).
    Stop(u8),
    FLoad { fd: FReg, base: VReg, off: i16 },
    FAlu { op: igjit_machine::FAluOp, fd: FReg, fa: FReg, fb: FReg },
    FCmp { fa: FReg, fb: FReg },
    FToIntChecked { dst: VReg, fs: FReg },
    FExponent { dst: VReg, fs: FReg },
    IntToF { fd: FReg, src: VReg },
    Nop,
}

impl Ir {
    /// Registers read by this op (for liveness analysis).
    pub fn uses(&self, out: &mut Vec<VReg>) {
        match *self {
            Ir::MovReg { src, .. } | Ir::Push { src } => out.push(src),
            Ir::Load { base, .. } | Ir::FLoad { base, .. } => out.push(base),
            Ir::Store { src, base, .. } => {
                out.push(src);
                out.push(base);
            }
            Ir::Alu { a, b, .. } => {
                out.push(a);
                out.push(b);
            }
            Ir::AluImm { a, .. } => out.push(a),
            Ir::Cmp { a, b } => {
                out.push(a);
                out.push(b);
            }
            Ir::CmpImm { a, .. } => out.push(a),
            Ir::AllocObject { reg, .. } => out.push(reg),
            Ir::IntToF { src, .. } => out.push(src),
            _ => {}
        }
    }

    /// The register written by this op, if any.
    pub fn def(&self) -> Option<VReg> {
        match *self {
            Ir::MovImm { dst, .. }
            | Ir::MovReg { dst, .. }
            | Ir::Load { dst, .. }
            | Ir::Pop { dst }
            | Ir::Alu { dst, .. }
            | Ir::AluImm { dst, .. }
            | Ir::AllocFloat { dst }
            | Ir::FToIntChecked { dst, .. }
            | Ir::FExponent { dst, .. } => Some(dst),
            Ir::AllocObject { reg, .. } => Some(reg),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precoloring_roundtrip() {
        let v = VReg::phys(Reg(5));
        assert_eq!(v.as_phys(), Some(Reg(5)));
        assert!(!v.is_virtual());
        let w = VReg(40);
        assert!(w.is_virtual());
        assert_eq!(w.as_phys(), None);
    }

    #[test]
    fn uses_and_defs() {
        let a = VReg(40);
        let b = VReg(41);
        let c = VReg(42);
        let i = Ir::Alu { op: AluOp::Add, dst: c, a, b };
        let mut uses = Vec::new();
        i.uses(&mut uses);
        assert_eq!(uses, vec![a, b]);
        assert_eq!(i.def(), Some(c));
        assert_eq!(Ir::Ret.def(), None);
    }
}
