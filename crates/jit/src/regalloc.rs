//! Linear-scan register allocation (the `RegisterAllocatingCogit`
//! extension).
//!
//! The front-end emits virtual registers; this pass assigns physical
//! registers by linear scan over live intervals and spills the rest to
//! fixed frame slots (the preamble reserves a spill area below the
//! temps). x86ish has almost no allocatable registers, so it spills
//! aggressively; Arm32ish rarely spills — a faithful echo of the
//! register-pressure asymmetry between the paper's two back-ends.

use std::collections::HashMap;

use igjit_machine::{Isa, Reg};
use igjit_mutate::{armed, ops as mutops};

use crate::convention::Convention;
use crate::ir::{Ir, VReg};
use crate::CompileError;

/// Number of spill slots every compiled-test frame reserves.
pub const SPILL_SLOTS: u32 = 16;
/// Bytes of the reserved spill area.
pub const SPILL_BYTES: u32 = SPILL_SLOTS * 4;

#[derive(Clone, Copy, Debug)]
enum Loc {
    Reg(Reg),
    Slot(u32),
}

/// Rewrites `ir` so that no virtual registers remain.
///
/// `ntemps` positions the spill area: spill slot `i` lives at
/// `FP - 4*(ntemps + i + 1)`.
pub fn allocate(ir: Vec<Ir>, isa: Isa, ntemps: u32) -> Result<Vec<Ir>, CompileError> {
    // Live intervals (first position, last position) per virtual reg.
    let mut intervals: HashMap<VReg, (usize, usize)> = HashMap::new();
    for (pos, op) in ir.iter().enumerate() {
        let mut regs = Vec::new();
        op.uses(&mut regs);
        if let Some(d) = op.def() {
            regs.push(d);
        }
        for r in regs {
            if r.is_virtual() {
                let e = intervals.entry(r).or_insert((pos, pos));
                e.1 = pos;
            }
        }
    }
    let mut order: Vec<(VReg, (usize, usize))> = intervals.into_iter().collect();
    order.sort_by_key(|&(v, (start, _))| (start, v));

    let mut pool = Convention::allocatable(isa);
    // Reserve the last pool register as the spill temp.
    let spill_temp = pool.pop().ok_or(CompileError::Backend("no registers".into()))?;
    // A second transient temp for ops with two spilled uses.
    let spill_temp2 = if armed(mutops::SPILL_TEMP_ALIASES_ARG0) {
        Convention::for_isa(isa).arg0
    } else {
        Convention::for_isa(isa).arg2
    };

    let mut assignment: HashMap<VReg, Loc> = HashMap::new();
    let mut active: Vec<(usize, VReg, Reg)> = Vec::new(); // (end, vreg, reg)
    let mut free = pool.clone();
    let mut next_slot: u32 = 0;
    let take_slot = |next_slot: &mut u32| -> Result<u32, CompileError> {
        let s = *next_slot;
        *next_slot += 1;
        if s >= SPILL_SLOTS {
            return Err(CompileError::Backend("spill area exhausted".into()));
        }
        Ok(s)
    };

    for (vreg, (start, end)) in order {
        let expire_early = armed(mutops::EXPIRE_ACTIVE_EARLY);
        active.retain(|&(aend, _, reg)| {
            if aend < start || (expire_early && aend == start) {
                free.push(reg);
                false
            } else {
                true
            }
        });
        if let Some(reg) = free.pop() {
            assignment.insert(vreg, Loc::Reg(reg));
            active.push((end, vreg, reg));
        } else if let Some(victim_idx) = active
            .iter()
            .enumerate()
            .max_by_key(|(_, &(aend, _, _))| aend)
            .map(|(i, _)| i)
            .filter(|&i| armed(mutops::DROP_VICTIM_END_FILTER) || active[i].0 > end)
        {
            // Steal the register from the interval that ends last.
            let (_, victim, reg) = active.remove(victim_idx);
            let slot = take_slot(&mut next_slot)?;
            assignment.insert(victim, Loc::Slot(slot));
            assignment.insert(vreg, Loc::Reg(reg));
            active.push((end, vreg, reg));
        } else {
            let slot = take_slot(&mut next_slot)?;
            assignment.insert(vreg, Loc::Slot(slot));
        }
    }

    let fp = VReg::phys(Convention::for_isa(isa).fp);
    let stride: u32 = if armed(mutops::SPILL_STRIDE_WIDENED) { 8 } else { 4 };
    let bias: u32 = if armed(mutops::SPILL_SLOT_OFF_BY_ONE) { 0 } else { 1 };
    let slot_off =
        move |slot: u32| -> i16 { -((stride * (ntemps + slot + bias)) as i32) as i16 };

    // Rewrite pass.
    let mut out: Vec<Ir> = Vec::with_capacity(ir.len() * 2);
    for op in ir {
        let mut uses = Vec::new();
        op.uses(&mut uses);
        let def = op.def();
        // Map each distinct spilled use to a transient temp.
        let mut temp_map: HashMap<VReg, VReg> = HashMap::new();
        let temps = [VReg::phys(spill_temp), VReg::phys(spill_temp2)];
        let mut next_temp = 0;
        for u in uses.iter().filter(|u| u.is_virtual()) {
            if let Some(Loc::Slot(slot)) = assignment.get(u) {
                if temp_map.contains_key(u) {
                    continue;
                }
                if next_temp >= temps.len() {
                    return Err(CompileError::Backend(
                        "more than two spilled operands in one op".into(),
                    ));
                }
                let t = temps[next_temp];
                next_temp += 1;
                if !armed(mutops::DROP_SPILL_RELOAD) {
                    out.push(Ir::Load { dst: t, base: fp, off: slot_off(*slot) });
                }
                temp_map.insert(*u, t);
            }
        }
        // If the def is spilled, compute into the spill temp (reusing
        // a use temp when def == use keeps two-address forms legal).
        let def_store = match def {
            Some(d) if d.is_virtual() => match assignment.get(&d) {
                Some(Loc::Slot(slot)) => {
                    let t = *temp_map.get(&d).unwrap_or(&temps[0]);
                    temp_map.insert(d, t);
                    Some((t, *slot))
                }
                _ => None,
            },
            _ => None,
        };
        let rewrite = |v: VReg| -> VReg {
            if !v.is_virtual() {
                return v;
            }
            if let Some(t) = temp_map.get(&v) {
                return *t;
            }
            match assignment.get(&v) {
                Some(Loc::Reg(r)) => VReg::phys(*r),
                _ => v,
            }
        };
        out.push(rewrite_op(op, &rewrite));
        if let Some((t, slot)) = def_store {
            if !armed(mutops::DROP_SPILL_DEF_STORE) {
                out.push(Ir::Store { src: t, base: fp, off: slot_off(slot) });
            }
        }
    }
    Ok(out)
}

fn rewrite_op(op: Ir, f: &dyn Fn(VReg) -> VReg) -> Ir {
    match op {
        Ir::MovImm { dst, imm } => Ir::MovImm { dst: f(dst), imm },
        Ir::MovReg { dst, src } => Ir::MovReg { dst: f(dst), src: f(src) },
        Ir::Load { dst, base, off } => Ir::Load { dst: f(dst), base: f(base), off },
        Ir::Store { src, base, off } => Ir::Store { src: f(src), base: f(base), off },
        Ir::Push { src } => Ir::Push { src: f(src) },
        Ir::Pop { dst } => Ir::Pop { dst: f(dst) },
        Ir::Alu { op, dst, a, b } => Ir::Alu { op, dst: f(dst), a: f(a), b: f(b) },
        Ir::AluImm { op, dst, a, imm } => Ir::AluImm { op, dst: f(dst), a: f(a), imm },
        Ir::Cmp { a, b } => Ir::Cmp { a: f(a), b: f(b) },
        Ir::CmpImm { a, imm } => Ir::CmpImm { a: f(a), imm },
        Ir::AllocFloat { dst } => Ir::AllocFloat { dst: f(dst) },
        Ir::AllocObject { reg, class, format } => {
            Ir::AllocObject { reg: f(reg), class, format }
        }
        Ir::FLoad { fd, base, off } => Ir::FLoad { fd, base: f(base), off },
        Ir::FToIntChecked { dst, fs } => Ir::FToIntChecked { dst: f(dst), fs },
        Ir::FExponent { dst, fs } => Ir::FExponent { dst: f(dst), fs },
        Ir::IntToF { fd, src } => Ir::IntToF { fd, src: f(src) },
        other => other,
    }
}

/// Quick sanity helper: true when no virtual register remains.
#[cfg_attr(not(test), allow(dead_code))]
pub fn fully_allocated(ir: &[Ir]) -> bool {
    ir.iter().all(|op| {
        let mut regs = Vec::new();
        op.uses(&mut regs);
        if let Some(d) = op.def() {
            regs.push(d);
        }
        regs.iter().all(|r| !r.is_virtual())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use igjit_machine::AluOp;

    fn v(n: u16) -> VReg {
        VReg(VReg::FIRST_VIRTUAL + n)
    }

    #[test]
    fn simple_sequences_allocate_registers() {
        let ir = vec![
            Ir::MovImm { dst: v(0), imm: 1 },
            Ir::MovImm { dst: v(1), imm: 2 },
            Ir::Alu { op: AluOp::Add, dst: v(2), a: v(0), b: v(1) },
            Ir::MovReg { dst: VReg::phys(Reg(0)), src: v(2) },
            Ir::Ret,
        ];
        for isa in [Isa::X86ish, Isa::Arm32ish] {
            let out = allocate(ir.clone(), isa, 0).unwrap();
            assert!(fully_allocated(&out), "{isa:?}: {out:?}");
        }
    }

    #[test]
    fn allocation_preserves_semantics() {
        use crate::backend::lower;
        use igjit_heap::ObjectMemory;
        use igjit_machine::{Machine, MachineConfig, MachineOutcome};
        let ir = vec![
            Ir::MovImm { dst: v(0), imm: 10 },
            Ir::MovImm { dst: v(1), imm: 20 },
            Ir::MovImm { dst: v(2), imm: 12 },
            Ir::Alu { op: AluOp::Add, dst: v(3), a: v(0), b: v(1) },
            Ir::Alu { op: AluOp::Add, dst: v(4), a: v(3), b: v(2) },
            Ir::MovReg { dst: VReg::phys(Reg(0)), src: v(4) },
        ];
        for isa in [Isa::X86ish, Isa::Arm32ish] {
            let mut full = ir.clone();
            // Frame teardown before returning, as compiled methods do.
            full.push(Ir::MovReg {
                dst: VReg::phys(isa.sp()),
                src: VReg::phys(isa.fp()),
            });
            full.push(Ir::Ret);
            let alloc = allocate(full, isa, 0).unwrap();
            let code = lower(&alloc, isa).unwrap();
            let mut mem = ObjectMemory::new();
            let mut m = Machine::new(&mut mem, isa, &code);
            // Set up FP so spill slots have a home.
            let sp = m.reg(isa.sp());
            m.set_reg(isa.fp(), sp);
            m.set_reg(isa.sp(), sp - SPILL_BYTES);
            assert_eq!(m.run(MachineConfig::default()), MachineOutcome::ReturnedToCaller);
            assert_eq!(m.reg(Reg(0)), 42, "{isa:?}");
        }
    }

    #[test]
    fn many_live_values_spill_on_x86_and_still_compute() {
        use crate::backend::lower;
        use igjit_heap::ObjectMemory;
        use igjit_machine::{Machine, MachineConfig, MachineOutcome};
        // 6 simultaneously-live values exceed every pool.
        let mut ir = Vec::new();
        for i in 0..6u16 {
            ir.push(Ir::MovImm { dst: v(i), imm: u32::from(i) + 1 });
        }
        // Sum them all: 1+2+..+6 = 21.
        ir.push(Ir::Alu { op: AluOp::Add, dst: v(6), a: v(0), b: v(1) });
        ir.push(Ir::Alu { op: AluOp::Add, dst: v(7), a: v(6), b: v(2) });
        ir.push(Ir::Alu { op: AluOp::Add, dst: v(8), a: v(7), b: v(3) });
        ir.push(Ir::Alu { op: AluOp::Add, dst: v(9), a: v(8), b: v(4) });
        ir.push(Ir::Alu { op: AluOp::Add, dst: v(10), a: v(9), b: v(5) });
        ir.push(Ir::MovReg { dst: VReg::phys(Reg(0)), src: v(10) });
        for isa in [Isa::X86ish, Isa::Arm32ish] {
            let mut full = ir.clone();
            full.push(Ir::MovReg {
                dst: VReg::phys(isa.sp()),
                src: VReg::phys(isa.fp()),
            });
            full.push(Ir::Ret);
            let alloc = allocate(full, isa, 2).unwrap();
            assert!(fully_allocated(&alloc), "{isa:?}");
            let code = lower(&alloc, isa).unwrap();
            let mut mem = ObjectMemory::new();
            let mut m = Machine::new(&mut mem, isa, &code);
            let sp = m.reg(isa.sp());
            m.set_reg(isa.fp(), sp);
            m.set_reg(isa.sp(), sp - SPILL_BYTES - 8);
            assert_eq!(m.run(MachineConfig::default()), MachineOutcome::ReturnedToCaller);
            assert_eq!(m.reg(Reg(0)), 21, "{isa:?}");
        }
    }
}
