//! Register conventions per ISA.

use igjit_machine::{Isa, Reg};
use igjit_mutate::{armed, ops as mutops};

/// The calling/usage convention compiled test methods follow.
///
/// Mirrors Cog's fixed-role registers (ReceiverResultReg, Arg0Reg, …):
/// the differential tester seeds `receiver`/`arg*` before running and
/// reads results from `receiver` after.
#[derive(Clone, Copy, Debug)]
pub struct Convention {
    /// Receiver on entry; result on return (Cog's ReceiverResultReg).
    pub receiver: Reg,
    /// First argument.
    pub arg0: Reg,
    /// Second argument.
    pub arg1: Reg,
    /// Third argument.
    pub arg2: Reg,
    /// Scratch register.
    pub scratch: Reg,
    /// Second scratch register.
    pub scratch2: Reg,
    /// Frame pointer.
    pub fp: Reg,
    /// Stack pointer.
    pub sp: Reg,
}

impl Convention {
    /// The convention for an ISA.
    pub fn for_isa(isa: Isa) -> Convention {
        let mut c = Convention {
            receiver: Reg(0),
            arg0: Reg(1),
            arg1: Reg(2),
            arg2: Reg(3),
            scratch: Reg(4),
            scratch2: Reg(5),
            fp: isa.fp(),
            sp: isa.sp(),
        };
        if armed(mutops::ARG1_ALIASES_ARG0) {
            c.arg1 = c.arg0;
        }
        if armed(mutops::SCRATCH_ALIASES_RECEIVER) {
            c.scratch = c.receiver;
        }
        if armed(mutops::FP_ALIASES_POOL_REG) {
            c.fp = Reg(5);
        }
        c
    }

    /// Registers the linear-scan allocator may hand out on this ISA
    /// (disjoint from the fixed-role registers above).
    pub fn allocatable(isa: Isa) -> Vec<Reg> {
        let mut pool = match isa {
            // x86ish has no free registers beyond the fixed roles; the
            // allocator reuses the scratch pair.
            Isa::X86ish => vec![Reg(4), Reg(5)],
            Isa::Arm32ish => {
                vec![Reg(4), Reg(5), Reg(6), Reg(7), Reg(8), Reg(9), Reg(10), Reg(12)]
            }
        };
        if armed(mutops::ALLOCATABLE_INCLUDES_RECEIVER) {
            pool.insert(0, Reg(0));
        }
        pool
    }

    /// The argument register for argument index `i` (0-based).
    pub fn arg(&self, i: usize) -> Reg {
        match i {
            0 => self.arg0,
            1 => self.arg1,
            _ => self.arg2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_roles_do_not_collide_with_sp_fp() {
        for isa in [Isa::X86ish, Isa::Arm32ish] {
            let c = Convention::for_isa(isa);
            for r in [c.receiver, c.arg0, c.arg1, c.arg2, c.scratch, c.scratch2] {
                assert_ne!(r, c.fp, "{isa:?}");
                assert_ne!(r, c.sp, "{isa:?}");
            }
        }
    }

    #[test]
    fn allocatable_regs_are_in_range() {
        for isa in [Isa::X86ish, Isa::Arm32ish] {
            let c = Convention::for_isa(isa);
            for r in Convention::allocatable(isa) {
                assert!(r.0 < isa.reg_count());
                assert_ne!(r, c.fp);
                assert_ne!(r, c.sp);
                assert_ne!(r, c.receiver);
            }
        }
    }

    #[test]
    fn arm_has_more_allocatable_registers() {
        assert!(
            Convention::allocatable(Isa::Arm32ish).len()
                > Convention::allocatable(Isa::X86ish).len()
        );
    }
}
