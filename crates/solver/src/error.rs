//! Solver errors.

/// Why a solve attempt produced no model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveError {
    /// The constraint set is unsatisfiable.
    Unsat,
    /// The problem mentions integers wider than the solver's 56-bit
    /// precision (§4.3 of the paper). Paths raising this are excluded
    /// by the curation step, not silently mis-solved.
    PrecisionExceeded,
    /// The backtracking search hit its node budget before deciding.
    ResourceLimit,
    /// The problem uses a feature the solver has no theory for
    /// (currently: bitwise operators, by design).
    Unsupported(&'static str),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Unsat => write!(f, "unsatisfiable"),
            SolveError::PrecisionExceeded => {
                write!(f, "integer constant exceeds {}-bit solver precision", crate::PRECISION_BITS)
            }
            SolveError::ResourceLimit => write!(f, "search node budget exhausted"),
            SolveError::Unsupported(what) => write!(f, "no theory for {what}"),
        }
    }
}

impl std::error::Error for SolveError {}
