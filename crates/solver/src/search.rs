//! The solving engine: preprocessing, interval propagation and
//! backtracking search.
//!
//! The engine is an *owned* value (no borrow of the input `Problem`),
//! so [`crate::Session`] can checkpoint and restore it across
//! push/pop assertion scopes. One-shot solving builds a fresh engine
//! per call, exactly as before the incremental layer existed.

use crate::constraint::{CmpOp, Constraint, FloatTerm, Kind, KindSet, LinExpr, VarId, VarSpec};
use crate::error::SolveError;
use crate::model::{Assignment, Model};
use crate::PRECISION_BITS;

/// A constraint-satisfaction problem: variables plus asserted
/// constraints.
#[derive(Clone, Debug, Default)]
pub struct Problem {
    specs: Vec<VarSpec>,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// An empty problem.
    pub fn new() -> Problem {
        Problem::default()
    }

    /// Introduces a fresh variable with the given initial domain.
    pub fn new_var(&mut self, spec: VarSpec) -> VarId {
        let id = VarId(self.specs.len() as u32);
        self.specs.push(spec);
        id
    }

    /// Asserts a constraint.
    pub fn assert(&mut self, constraint: Constraint) {
        self.constraints.push(constraint);
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.specs.len()
    }

    /// The asserted constraints, in assertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The variable specs, in creation order.
    pub fn specs(&self) -> &[VarSpec] {
        &self.specs
    }
}

/// Resource limits for the backtracking search.
#[derive(Clone, Copy, Debug)]
pub struct SearchLimits {
    /// Maximum number of search nodes visited.
    pub max_nodes: usize,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits { max_nodes: 50_000 }
    }
}

/// Solves with default limits.
pub fn solve(problem: &Problem) -> Result<Model, SolveError> {
    solve_with_limits(problem, SearchLimits::default())
}

/// Solves with explicit limits.
pub fn solve_with_limits(problem: &Problem, limits: SearchLimits) -> Result<Model, SolveError> {
    solve_counted(&problem.specs, &problem.constraints, limits).0
}

/// Whether a constraint's constants exceed the 56-bit precision gate.
pub(crate) fn constraint_is_wide(c: &Constraint) -> bool {
    c.max_abs_constant() >= (1i64 << (PRECISION_BITS - 1))
}

/// Whether a spec's bounds exceed the 56-bit precision gate.
pub(crate) fn spec_is_wide(s: &VarSpec) -> bool {
    let cap: i64 = 1 << (PRECISION_BITS - 1);
    s.int_bounds.0.saturating_abs() >= cap || s.int_bounds.1.saturating_abs() >= cap
}

/// From-scratch solve over explicit specs/constraints, also reporting
/// the number of search nodes visited (for [`crate::SessionStats`]).
pub(crate) fn solve_counted(
    specs: &[VarSpec],
    constraints: &[Constraint],
    limits: SearchLimits,
) -> (Result<Model, SolveError>, usize) {
    if constraints.iter().any(constraint_is_wide) || specs.iter().any(spec_is_wide) {
        return (Err(SolveError::PrecisionExceeded), 0);
    }
    let mut engine = Engine::new(0);
    // Pass 1: aliasing (top-level `ObjEq` only).
    engine.grow_roots(specs.len());
    for c in constraints {
        if let Constraint::ObjEq(a, b) = c {
            engine.union(a.0, b.0);
        }
    }
    // Pass 2: build the initial store and classify constraints.
    let mut store = engine.init_store(specs);
    for c in constraints {
        if engine.assert_into(c, &mut store).is_err() {
            return (Err(SolveError::Unsat), 0);
        }
    }
    if !engine.check_distinct_consistency() {
        return (Err(SolveError::Unsat), 0);
    }
    // Pass 3: search.
    engine.nodes_left = limits.max_nodes;
    let result = engine.search(store);
    let nodes_used = limits.max_nodes - engine.nodes_left;
    let result = match result {
        Some(model) => Ok(model),
        None => {
            if engine.nodes_left == 0 {
                Err(SolveError::ResourceLimit)
            } else {
                Err(SolveError::Unsat)
            }
        }
    };
    (result, nodes_used)
}

// ---------------------------------------------------------------------------
// Normalization plans (hash-consed assertion replay)
// ---------------------------------------------------------------------------

/// One primitive effect of asserting a constraint into the engine.
#[derive(Clone, Debug)]
pub(crate) enum NormOp {
    Kind { var: VarId, allowed: KindSet },
    /// Push a normalized `expr <= 0` inequality.
    Ineq(LinExpr),
    /// Exclude a single value from a variable's domain (unit `Ne`).
    Exclude { var: VarId, value: i64 },
    /// Queue an `Ne` for the leaf check.
    Residual(Constraint),
    /// Queue a float comparison for leaf enumeration.
    FloatC(Constraint),
    /// Record a distinctness pair.
    Distinct(u32, u32),
    /// Queue an `Or` for branching.
    Or(Vec<Constraint>),
}

/// The cached result of classifying one constraint: its normalized
/// engine effects plus the per-assert flags the [`crate::Session`]
/// needs. Built once per structurally-distinct constraint when
/// hash-consing is on; replayed by [`Engine::apply_norm`].
#[derive(Clone, Debug)]
pub(crate) struct NormPlan {
    /// The constraint violates the 56-bit precision gate.
    pub(crate) wide: bool,
    /// The constraint is a top-level `ObjEq` (forces the session's
    /// dirty rebuild path).
    pub(crate) objeq: bool,
    ops: Vec<NormOp>,
}

impl NormPlan {
    /// Normalizes `c` exactly as [`Engine::assert_into`] would on an
    /// alias-free engine.
    pub(crate) fn build(c: &Constraint) -> NormPlan {
        let mut plan = NormPlan {
            wide: constraint_is_wide(c),
            objeq: matches!(c, Constraint::ObjEq(..)),
            ops: Vec::new(),
        };
        plan.push_ops(c);
        plan
    }

    fn push_ops(&mut self, c: &Constraint) {
        match c {
            Constraint::Kind { var, allowed } => {
                self.ops.push(NormOp::Kind { var: *var, allowed: *allowed });
            }
            Constraint::Int(op, l, r) => {
                let e = l.minus(r);
                match op {
                    CmpOp::Le => self.ops.push(NormOp::Ineq(e)),
                    CmpOp::Lt => self.ops.push(NormOp::Ineq(e.offset(1))),
                    CmpOp::Ge => self.ops.push(NormOp::Ineq(e.negated())),
                    CmpOp::Gt => self.ops.push(NormOp::Ineq(e.negated().offset(1))),
                    CmpOp::Eq => {
                        self.ops.push(NormOp::Ineq(e.clone()));
                        self.ops.push(NormOp::Ineq(e.negated()));
                    }
                    CmpOp::Ne => {
                        if e.terms.len() == 1 && e.terms[0].0.abs() == 1 {
                            let (coeff, v) = e.terms[0];
                            self.ops.push(NormOp::Exclude {
                                var: v,
                                value: -e.constant * coeff.signum(),
                            });
                        }
                        self.ops.push(NormOp::Residual(Constraint::Int(
                            CmpOp::Ne,
                            l.clone(),
                            r.clone(),
                        )));
                    }
                }
            }
            Constraint::Float(..) => self.ops.push(NormOp::FloatC(c.clone())),
            Constraint::ObjEq(..) => {} // aliasing never reaches the incremental engine
            Constraint::ObjNe(a, b) => self.ops.push(NormOp::Distinct(a.0, b.0)),
            Constraint::And(cs) => {
                for c in cs {
                    self.push_ops(c);
                }
            }
            Constraint::Or(cs) => self.ops.push(NormOp::Or(cs.clone())),
        }
    }
}

// ---------------------------------------------------------------------------
// Internal solver
// ---------------------------------------------------------------------------

/// One recorded interval/kind narrowing, undone in reverse order by
/// [`Store::undo_to`]. The trail turns a hypothesis scope into
/// trail-mark → propagate → search → unwind, replacing the per-scope
/// [`Store`] clone the solver historically paid.
#[derive(Clone, Copy, Debug)]
enum TrailOp {
    /// `lo[var]` was raised; `old` is the previous lower bound.
    Lo { var: u32, old: i64 },
    /// `hi[var]` was lowered; `old` is the previous upper bound.
    Hi { var: u32, old: i64 },
    /// `kinds[var]` was intersected; `old` is the previous set.
    Kind { var: u32, old: KindSet },
    /// One value was pushed onto `excluded[var]`; undo pops it.
    Exclude { var: u32 },
}

/// Counters describing the trail-mode solver's work, exposed through
/// [`crate::Session::trail_stats`] and merged into the campaign
/// metrics. Kept apart from [`crate::SessionStats`] on purpose: the
/// session stats are pinned byte-identical between trail and clone
/// mode by the equivalence tests, while these counters *measure the
/// mode itself* (they are zero in clone mode and the pool counters are
/// zero in trail mode).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrailStats {
    /// Trail marks taken (hypothesis scopes, search branches and
    /// session pushes answered by an undo log instead of a clone).
    pub trail_marks: usize,
    /// Individual narrowings unwound across all scope exits.
    pub undone_ops: usize,
    /// Store clones avoided — every trail mark stands in for exactly
    /// one clone the clone-mode solver would have taken.
    pub clones_avoided: usize,
    /// Recycled-buffer reuses: clone-mode store copies served from the
    /// store pool, leaf assignment vectors drawn from the retired-model
    /// pool, and model copies re-backed by a pooled buffer.
    pub pool_hits: usize,
    /// The same paths when no retired buffer was available and a fresh
    /// allocation was taken instead.
    pub pool_misses: usize,
}

impl TrailStats {
    /// Accumulates `other` into `self` (plain sums).
    pub fn merge(&mut self, other: &TrailStats) {
        self.trail_marks += other.trail_marks;
        self.undone_ops += other.undone_ops;
        self.clones_avoided += other.clones_avoided;
        self.pool_hits += other.pool_hits;
        self.pool_misses += other.pool_misses;
    }

    /// The buffer-pool hit rate in [0, 1] (0 when no pooled path ran).
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }
}

pub(crate) struct Store {
    kinds: Vec<KindSet>,
    lo: Vec<i64>,
    hi: Vec<i64>,
    excluded: Vec<Vec<i64>>,
    /// The undo log. Every mutation of the four vectors above goes
    /// through a recording helper that appends here when `trail_on`;
    /// [`Store::undo_to`] pops back to a mark in reverse. The buffer is
    /// recycled across solves (it only ever truncates), so the SAT
    /// fast path allocates nothing once warm.
    trail: Vec<TrailOp>,
    /// Whether mutations are recorded. Off for one-shot engines and
    /// clone-mode sessions, so the historical paths pay one predictable
    /// branch per narrowing and nothing else.
    trail_on: bool,
}

impl Clone for Store {
    fn clone(&self) -> Store {
        Store {
            kinds: self.kinds.clone(),
            lo: self.lo.clone(),
            hi: self.hi.clone(),
            excluded: self.excluded.clone(),
            // Clones are search children / checkpoint copies; they are
            // protected by being copies, never by the trail.
            trail: Vec::new(),
            trail_on: false,
        }
    }

    /// Buffer-reusing copy: `Vec::clone_from` keeps the destination's
    /// allocations, which is what makes [`Engine::clone_store`]'s
    /// recycling pool worthwhile.
    fn clone_from(&mut self, src: &Store) {
        self.kinds.clone_from(&src.kinds);
        self.lo.clone_from(&src.lo);
        self.hi.clone_from(&src.hi);
        self.excluded.clone_from(&src.excluded);
        self.trail.clear();
        self.trail_on = false;
    }
}

impl Store {
    /// Switches trail recording on or off. Callers flip this once per
    /// session, before any recorded mutation.
    pub(crate) fn set_trail(&mut self, on: bool) {
        self.trail_on = on;
    }

    /// The current trail position; pass back to [`Store::undo_to`].
    pub(crate) fn trail_mark(&self) -> usize {
        self.trail.len()
    }

    /// Unwinds every narrowing recorded since `mark`, newest first,
    /// restoring the store to its exact state at the mark. Returns the
    /// number of operations undone.
    pub(crate) fn undo_to(&mut self, mark: usize) -> usize {
        let undone = self.trail.len() - mark;
        while self.trail.len() > mark {
            match self.trail.pop().expect("trail entry above mark") {
                TrailOp::Lo { var, old } => self.lo[var as usize] = old,
                TrailOp::Hi { var, old } => self.hi[var as usize] = old,
                TrailOp::Kind { var, old } => self.kinds[var as usize] = old,
                TrailOp::Exclude { var } => {
                    self.excluded[var as usize].pop();
                }
            }
        }
        undone
    }

    /// Drops variables added after a checkpoint (the trail-mode
    /// counterpart of swapping in the checkpoint's store copy). Undo
    /// to the scope's trail mark *first*: trail entries may touch the
    /// to-be-truncated suffix.
    pub(crate) fn truncate(&mut self, n: usize) {
        self.kinds.truncate(n);
        self.lo.truncate(n);
        self.hi.truncate(n);
        self.excluded.truncate(n);
    }

    /// `kinds[r] = ks`, recorded.
    #[inline]
    fn set_kind(&mut self, r: usize, ks: KindSet) {
        if self.trail_on {
            self.trail.push(TrailOp::Kind { var: r as u32, old: self.kinds[r] });
        }
        self.kinds[r] = ks;
    }

    /// `lo[i] = bound`, recorded.
    #[inline]
    fn set_lo(&mut self, i: usize, bound: i64) {
        if self.trail_on {
            self.trail.push(TrailOp::Lo { var: i as u32, old: self.lo[i] });
        }
        self.lo[i] = bound;
    }

    /// `hi[i] = bound`, recorded.
    #[inline]
    fn set_hi(&mut self, i: usize, bound: i64) {
        if self.trail_on {
            self.trail.push(TrailOp::Hi { var: i as u32, old: self.hi[i] });
        }
        self.hi[i] = bound;
    }

    /// `excluded[i].push(value)`, recorded.
    #[inline]
    fn push_excluded(&mut self, i: usize, value: i64) {
        if self.trail_on {
            self.trail.push(TrailOp::Exclude { var: i as u32 });
        }
        self.excluded[i].push(value);
    }
}

/// Snapshot of the engine's classified-constraint list lengths; the
/// search appends to these while branching `Or`s and — on success —
/// returns without truncating, so incremental callers restore them.
#[derive(Clone, Copy)]
pub(crate) struct EngineMark {
    inequalities: usize,
    residual: usize,
    ors: usize,
    floats: usize,
    distinct: usize,
}

#[derive(Clone)]
pub(crate) struct Engine {
    nvars: usize,
    root: Vec<u32>,
    distinct: Vec<(u32, u32)>,
    /// Linear inequalities, normalized to `expr <= 0`, with vars
    /// rewritten to alias roots.
    inequalities: Vec<LinExpr>,
    /// `Ne` constraints kept for the leaf check.
    residual: Vec<Constraint>,
    /// `Or` constraints to branch on (disjuncts unflattened).
    ors: Vec<Vec<Constraint>>,
    floats: Vec<Constraint>,
    pub(crate) nodes_left: usize,
    /// Retired [`Store`]s, recycled by [`Engine::clone_store`] so the
    /// search's per-branch copies reuse their buffers instead of
    /// re-allocating four vectors per node.
    pool: Vec<Store>,
    /// Monotone counter bumped by every mutation that could stale the
    /// memoized interesting-roots mask (constraint list changes,
    /// variable growth, aliasing).
    generation: u64,
    /// Generation [`Engine::refresh_interesting`] last computed at.
    interesting_gen: u64,
    /// Per-root flag: some in-engine constraint mentions the root, so
    /// the search must branch on it rather than pin it at the leaf.
    interesting: Vec<bool>,
    /// Trail-mode and pool work counters (see [`TrailStats`]).
    pub(crate) tstats: TrailStats,
    /// Scratch buffers for [`Engine::build_leaf`], recycled across
    /// solves so extracting a model does not allocate once warm.
    leaf_ints: Vec<i64>,
    leaf_kinds: Vec<Kind>,
    leaf_floats: Vec<f64>,
    /// Retired assignment buffers ([`crate::Session::recycle_model`]),
    /// reused by [`Engine::build_leaf`] for the models it returns.
    apool: Vec<Vec<Assignment>>,
}

impl Engine {
    pub(crate) fn new(nvars: usize) -> Engine {
        Engine {
            nvars,
            root: (0..nvars as u32).collect(),
            distinct: Vec::new(),
            inequalities: Vec::new(),
            residual: Vec::new(),
            ors: Vec::new(),
            floats: Vec::new(),
            nodes_left: 0,
            pool: Vec::new(),
            generation: 1,
            interesting_gen: 0,
            interesting: Vec::new(),
            tstats: TrailStats::default(),
            leaf_ints: Vec::new(),
            leaf_kinds: Vec::new(),
            leaf_floats: Vec::new(),
            apool: Vec::new(),
        }
    }

    /// A copy of `src` drawn from the recycling pool when possible
    /// (`clone_from` reuses the retired store's buffers).
    pub(crate) fn clone_store(&mut self, src: &Store) -> Store {
        match self.pool.pop() {
            Some(mut s) => {
                self.tstats.pool_hits += 1;
                s.clone_from(src);
                s
            }
            None => {
                self.tstats.pool_misses += 1;
                src.clone()
            }
        }
    }

    /// Retires a model's assignment buffer for [`Engine::build_leaf`]
    /// reuse (bounded, to cap idle memory).
    pub(crate) fn recycle_model(&mut self, m: Model) {
        if self.apool.len() < 32 {
            self.apool.push(m.into_assignments());
        }
    }

    /// Retires a store into the pool (bounded, to cap idle memory).
    pub(crate) fn recycle_store(&mut self, s: Store) {
        if self.pool.len() < 32 {
            self.pool.push(s);
        }
    }

    /// Number of classified inequalities (the [`Engine::propagate_new`]
    /// suffix cursor).
    pub(crate) fn ineq_count(&self) -> usize {
        self.inequalities.len()
    }

    pub(crate) fn var_count(&self) -> usize {
        self.nvars
    }

    fn grow_roots(&mut self, n: usize) {
        while self.nvars < n {
            self.root.push(self.nvars as u32);
            self.nvars += 1;
        }
    }

    /// Appends one variable to an engine *and* its live store (the
    /// incremental path; the one-shot path initializes in bulk).
    pub(crate) fn add_var(&mut self, spec: &VarSpec, store: &mut Store) {
        self.generation += 1;
        self.root.push(self.nvars as u32);
        self.nvars += 1;
        store.kinds.push(KindSet::ANY.intersect(spec.kinds));
        store.lo.push((i64::MIN / 4).max(spec.int_bounds.0));
        store.hi.push((i64::MAX / 4).min(spec.int_bounds.1));
        store.excluded.push(Vec::new());
    }

    pub(crate) fn init_store(&self, specs: &[VarSpec]) -> Store {
        let n = self.nvars;
        let mut store = Store {
            kinds: vec![KindSet::ANY; n],
            lo: vec![i64::MIN / 4; n],
            hi: vec![i64::MAX / 4; n],
            excluded: vec![Vec::new(); n],
            trail: Vec::new(),
            trail_on: false,
        };
        for (i, spec) in specs.iter().enumerate() {
            let r = self.find(i as u32) as usize;
            store.kinds[r] = store.kinds[r].intersect(spec.kinds);
            store.lo[r] = store.lo[r].max(spec.int_bounds.0);
            store.hi[r] = store.hi[r].min(spec.int_bounds.1);
        }
        store
    }

    pub(crate) fn mark(&self) -> EngineMark {
        EngineMark {
            inequalities: self.inequalities.len(),
            residual: self.residual.len(),
            ors: self.ors.len(),
            floats: self.floats.len(),
            distinct: self.distinct.len(),
        }
    }

    pub(crate) fn truncate_to(&mut self, mark: EngineMark) {
        self.generation += 1;
        self.inequalities.truncate(mark.inequalities);
        self.residual.truncate(mark.residual);
        self.ors.truncate(mark.ors);
        self.floats.truncate(mark.floats);
        self.distinct.truncate(mark.distinct);
    }

    /// Drops variables back to a count recorded before they were
    /// added. Sound because union-find roots always have smaller ids
    /// than their children, so the surviving prefix never references a
    /// truncated entry — and because sessions never union at all
    /// (aliasing goes through the from-scratch rebuild path).
    pub(crate) fn truncate_vars(&mut self, n: usize) {
        self.generation += 1;
        self.root.truncate(n);
        self.nvars = n;
    }

    fn find(&self, v: u32) -> u32 {
        let mut v = v;
        while self.root[v as usize] != v {
            v = self.root[v as usize];
        }
        v
    }

    fn union(&mut self, a: u32, b: u32) {
        self.generation += 1;
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Keep the smaller id as root for determinism.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.root[hi as usize] = lo;
        }
    }

    fn rewrite_expr(&self, e: &LinExpr) -> LinExpr {
        let mut out = LinExpr::constant(e.constant);
        for &(c, v) in &e.terms {
            out = out.plus(&LinExpr::scaled_var(c, VarId(self.find(v.0))));
        }
        out
    }

    pub(crate) fn check_distinct_consistency(&self) -> bool {
        self.distinct.iter().all(|&(a, b)| self.find(a) != self.find(b))
    }

    /// Asserts `c` into the store (kinds, inequalities) or queues it
    /// for branching/leaf checking. Returns Err only on hard
    /// structural unsatisfiability.
    pub(crate) fn assert_into(
        &mut self,
        c: &Constraint,
        store: &mut Store,
    ) -> Result<(), SolveError> {
        self.generation += 1;
        match c {
            Constraint::Kind { var, allowed } => {
                let r = self.find(var.0) as usize;
                store.set_kind(r, store.kinds[r].intersect(*allowed));
                if store.kinds[r].is_empty() {
                    return Err(SolveError::Unsat);
                }
            }
            Constraint::Int(op, l, r) => {
                let e = self.rewrite_expr(&l.minus(r));
                match op {
                    CmpOp::Le => self.inequalities.push(e),
                    CmpOp::Lt => self.inequalities.push(e.offset(1)),
                    CmpOp::Ge => self.inequalities.push(e.negated()),
                    CmpOp::Gt => self.inequalities.push(e.negated().offset(1)),
                    CmpOp::Eq => {
                        self.inequalities.push(e.clone());
                        self.inequalities.push(e.negated());
                    }
                    CmpOp::Ne => {
                        if e.terms.len() == 1 && e.terms[0].0.abs() == 1 {
                            let (coeff, v) = e.terms[0];
                            let excl = -e.constant * coeff.signum();
                            store.push_excluded(v.index(), excl);
                        }
                        self.residual.push(Constraint::Int(CmpOp::Ne, l.clone(), r.clone()));
                    }
                }
            }
            Constraint::Float(..) => self.floats.push(c.clone()),
            Constraint::ObjEq(..) => {} // handled in the aliasing pass
            Constraint::ObjNe(a, b) => self.distinct.push((a.0, b.0)),
            Constraint::And(cs) => {
                for c in cs {
                    self.assert_into(c, store)?;
                }
            }
            Constraint::Or(cs) => self.ors.push(cs.clone()),
        }
        Ok(())
    }

    /// Replays a pre-normalized assertion plan into the engine and
    /// store. Behaviorally identical to [`Engine::assert_into`] on the
    /// plan's source constraint **provided the engine has performed no
    /// aliasing** (every root is itself) — which holds for every
    /// [`crate::Session`], since sessions route `ObjEq` through the
    /// from-scratch rebuild path instead of unioning.
    pub(crate) fn apply_norm(&mut self, plan: &NormPlan, store: &mut Store) -> Result<(), SolveError> {
        self.generation += 1;
        for op in &plan.ops {
            match op {
                NormOp::Kind { var, allowed } => {
                    let r = self.find(var.0) as usize;
                    store.set_kind(r, store.kinds[r].intersect(*allowed));
                    if store.kinds[r].is_empty() {
                        return Err(SolveError::Unsat);
                    }
                }
                NormOp::Ineq(e) => self.inequalities.push(e.clone()),
                NormOp::Exclude { var, value } => store.push_excluded(var.index(), *value),
                NormOp::Residual(c) => self.residual.push(c.clone()),
                NormOp::FloatC(c) => self.floats.push(c.clone()),
                NormOp::Distinct(a, b) => self.distinct.push((*a, *b)),
                NormOp::Or(cs) => self.ors.push(cs.clone()),
            }
        }
        Ok(())
    }

    /// Interval propagation to fixpoint; returns false on an empty
    /// domain. For a store already at fixpoint with
    /// respect to `inequalities[..first_new]`: the first pass scans
    /// only the appended suffix — a pass over the older prefix would
    /// provably change nothing (its bounds are already tight, and
    /// asserts never touch `lo`/`hi` directly) — and any tightening
    /// falls back to full fixpoint passes. With `first_new == 0` this
    /// is exactly the historical full propagation.
    pub(crate) fn propagate_new(&self, store: &mut Store, first_new: usize) -> bool {
        let mut start = first_new;
        for _round in 0..64 {
            let mut changed = false;
            for e in &self.inequalities[start..] {
                // Pure-constant infeasibility.
                if e.terms.is_empty() {
                    if e.constant > 0 {
                        return false;
                    }
                    continue;
                }
                // e <= 0; tighten every variable's bound. The sum of
                // per-term minimum contributions is computed once and
                // each variable's rhs derived by subtracting its own
                // contribution: tightening term `v` always moves the
                // bound its own contribution does *not* read (a
                // positive coefficient reads `lo` but tightens `hi`,
                // and vice versa), so contributions never go stale
                // within one pass and this matches the quadratic
                // per-term rescan exactly.
                let mut total_min: i128 = 0;
                for &(c2, v2) in &e.terms {
                    let (lo, hi) = (store.lo[v2.index()] as i128, store.hi[v2.index()] as i128);
                    if lo > hi {
                        return false;
                    }
                    total_min += if c2 >= 0 { c2 as i128 * lo } else { c2 as i128 * hi };
                }
                for &(coeff, v) in &e.terms {
                    let i = v.index();
                    let (lo, hi) = (store.lo[i] as i128, store.hi[i] as i128);
                    let own_min = if coeff >= 0 { coeff as i128 * lo } else { coeff as i128 * hi };
                    // coeff*v <= -constant - sum(other terms' minima)
                    let rhs_hi = -(e.constant as i128) - (total_min - own_min);
                    if coeff > 0 {
                        // v <= floor(rhs_hi / coeff); unit coefficients
                        // (the common case) skip the 128-bit division.
                        let bound = if coeff == 1 { rhs_hi } else { rhs_hi.div_euclid(coeff as i128) };
                        let bound = bound.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
                        if bound < store.hi[i] {
                            store.set_hi(i, bound);
                            changed = true;
                        }
                    } else {
                        // coeff < 0: v >= ceil(rhs_hi / coeff), and
                        // flooring by a negative divisor is exactly
                        // that ceiling.
                        let bound = if coeff == -1 {
                            -rhs_hi
                        } else {
                            rhs_hi.div_euclid(coeff as i128)
                        };
                        let bound = bound.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
                        if bound > store.lo[i] {
                            store.set_lo(i, bound);
                            changed = true;
                        }
                    }
                    if store.lo[i] > store.hi[i] {
                        return false;
                    }
                }
            }
            if !changed {
                break;
            }
            start = 0;
        }
        true
    }

    /// Search from a freshly built store: the root node propagates
    /// every inequality.
    pub(crate) fn search(&mut self, store: Store) -> Option<Model> {
        self.search_with_suffix(store, 0)
    }

    /// Search from a store already at its propagated fixpoint (the
    /// incremental session path): the root node's propagation starts
    /// with an empty suffix and is free.
    pub(crate) fn search_incremental(&mut self, store: Store) -> Option<Model> {
        let first_new = self.inequalities.len();
        self.search_with_suffix(store, first_new)
    }

    fn search_with_suffix(&mut self, mut store: Store, first_new: usize) -> Option<Model> {
        let pending_ors: Vec<usize> = (0..self.ors.len()).collect();
        let result = self.search_inner(&mut store, &pending_ors, first_new);
        self.recycle_store(store);
        result
    }

    /// Trail-mode counterpart of [`Engine::search_incremental`]: the
    /// search runs *in place* on the session's live store, recording
    /// every narrowing on its trail instead of isolating branches in
    /// cloned stores. The caller takes a trail mark before and unwinds
    /// to it after (success leaves the winning branch's narrowings on
    /// the store, exactly like the clone search leaves them in the
    /// discarded child — the model was already extracted).
    ///
    /// Visits the same nodes in the same order as the clone search on
    /// the same input, by construction: each disjunct/candidate starts
    /// from the identical parent fixpoint, restored by `undo_to` where
    /// the clone search starts a fresh copy.
    pub(crate) fn search_in_place(&mut self, store: &mut Store) -> Option<Model> {
        let first_new = self.inequalities.len();
        let pending_ors: Vec<usize> = (0..self.ors.len()).collect();
        self.search_inner_in_place(store, &pending_ors, first_new)
    }

    fn search_inner(
        &mut self,
        store: &mut Store,
        pending_ors: &[usize],
        first_new: usize,
    ) -> Option<Model> {
        if self.nodes_left == 0 {
            return None;
        }
        self.nodes_left -= 1;
        if !self.propagate_new(store, first_new) {
            return None;
        }
        // Branch on the first pending Or. The disjunct list is moved
        // out (and restored on every exit) rather than cloned: the
        // recursion below never reads `ors[oi]` — pending indices only
        // ever point at other entries.
        if let Some((&oi, rest)) = pending_ors.split_first() {
            let disjuncts = std::mem::take(&mut self.ors[oi]);
            let mut result = None;
            for d in &disjuncts {
                let mut child = self.clone_store(store);
                let saved = self.mark();
                let ok = self.assert_into(d, &mut child).is_ok();
                // Newly nested Ors get appended; include them in pending.
                let mut new_pending: Vec<usize> = rest.to_vec();
                new_pending.extend(saved.ors..self.ors.len());
                let r = if ok && self.check_distinct_consistency() {
                    // The child store was cloned at this node's
                    // fixpoint; only the disjunct's inequalities are
                    // new to it.
                    self.search_inner(&mut child, &new_pending, saved.inequalities)
                } else {
                    None
                };
                self.recycle_store(child);
                if r.is_some() {
                    result = r;
                    break;
                }
                self.truncate_to(saved);
            }
            self.ors[oi] = disjuncts;
            return result;
        }
        // All Ors decided: assign integer variables.
        self.refresh_interesting(store.lo.len());
        let unassigned = (0..store.lo.len())
            .filter(|&i| self.find(i as u32) as usize == i)
            .find(|&i| store.lo[i] < store.hi[i] && self.interesting[i]);
        if let Some(i) = unassigned {
            let (lo, hi) = (store.lo[i], store.hi[i]);
            let mut candidates = vec![];
            if lo <= 0 && hi >= 0 {
                candidates.push(0);
            }
            if lo <= 1 && hi >= 1 {
                candidates.push(1);
            }
            candidates.push(lo);
            candidates.push(hi);
            candidates.push(lo.midpoint(hi));
            candidates.dedup();
            let mut tried = Vec::new();
            for v in candidates {
                let excluded = &store.excluded[i];
                let v = if excluded.contains(&v) {
                    // Nudge off an excluded value, staying in bounds.
                    let mut w = v;
                    while excluded.contains(&w) && w < hi {
                        w += 1;
                    }
                    if excluded.contains(&w) {
                        continue;
                    }
                    w
                } else {
                    v
                };
                if tried.contains(&v) {
                    continue;
                }
                tried.push(v);
                let mut child = self.clone_store(store);
                child.lo[i] = v;
                child.hi[i] = v;
                // The assignment moved `lo`/`hi` directly, which the
                // suffix trick cannot see: re-propagate everything.
                let r = self.search_inner(&mut child, &[], 0);
                self.recycle_store(child);
                if r.is_some() {
                    return r;
                }
            }
            return None;
        }
        // Leaf: pin remaining unbounded roots to their lower bound.
        let leaf = self.build_leaf(store)?;
        Some(leaf)
    }

    /// [`Engine::search_inner`] with trail-based backtracking: a
    /// branch is trail-mark → assert → recurse → unwind instead of a
    /// store clone per disjunct/candidate. Mirrors the clone search
    /// statement for statement (same node budget decrements, same
    /// branch order, same candidate selection), which is what makes
    /// the two modes stats-exact and row-identical; keep the two in
    /// sync when touching either.
    fn search_inner_in_place(
        &mut self,
        store: &mut Store,
        pending_ors: &[usize],
        first_new: usize,
    ) -> Option<Model> {
        if self.nodes_left == 0 {
            return None;
        }
        self.nodes_left -= 1;
        if !self.propagate_new(store, first_new) {
            return None;
        }
        if let Some((&oi, rest)) = pending_ors.split_first() {
            let disjuncts = std::mem::take(&mut self.ors[oi]);
            let mut result = None;
            for d in &disjuncts {
                let tm = store.trail_mark();
                self.tstats.trail_marks += 1;
                self.tstats.clones_avoided += 1;
                let saved = self.mark();
                let ok = self.assert_into(d, store).is_ok();
                let mut new_pending: Vec<usize> = rest.to_vec();
                new_pending.extend(saved.ors..self.ors.len());
                let r = if ok && self.check_distinct_consistency() {
                    self.search_inner_in_place(store, &new_pending, saved.inequalities)
                } else {
                    None
                };
                if r.is_some() {
                    // Success: like the clone search, return without
                    // restoring — the caller's top-level unwind does.
                    result = r;
                    break;
                }
                self.tstats.undone_ops += store.undo_to(tm);
                self.truncate_to(saved);
            }
            self.ors[oi] = disjuncts;
            return result;
        }
        // All Ors decided: assign integer variables.
        self.refresh_interesting(store.lo.len());
        let unassigned = (0..store.lo.len())
            .filter(|&i| self.find(i as u32) as usize == i)
            .find(|&i| store.lo[i] < store.hi[i] && self.interesting[i]);
        if let Some(i) = unassigned {
            let (lo, hi) = (store.lo[i], store.hi[i]);
            let mut candidates = vec![];
            if lo <= 0 && hi >= 0 {
                candidates.push(0);
            }
            if lo <= 1 && hi >= 1 {
                candidates.push(1);
            }
            candidates.push(lo);
            candidates.push(hi);
            candidates.push(lo.midpoint(hi));
            candidates.dedup();
            let mut tried = Vec::new();
            for v in candidates {
                // `excluded[i]` is back at the parent fixpoint here:
                // a failed candidate's narrowings were unwound below.
                let excluded = &store.excluded[i];
                let v = if excluded.contains(&v) {
                    let mut w = v;
                    while excluded.contains(&w) && w < hi {
                        w += 1;
                    }
                    if excluded.contains(&w) {
                        continue;
                    }
                    w
                } else {
                    v
                };
                if tried.contains(&v) {
                    continue;
                }
                tried.push(v);
                let tm = store.trail_mark();
                self.tstats.trail_marks += 1;
                self.tstats.clones_avoided += 1;
                store.set_lo(i, v);
                store.set_hi(i, v);
                let r = self.search_inner_in_place(store, &[], 0);
                if r.is_some() {
                    return r;
                }
                self.tstats.undone_ops += store.undo_to(tm);
            }
            return None;
        }
        let leaf = self.build_leaf(store)?;
        Some(leaf)
    }

    /// Recomputes the interesting-roots mask (a variable matters for
    /// search when a constraint mentions its root; all others can be
    /// pinned to their default at the leaf) unless the memoized one is
    /// still current. One pass over the constraint lists per engine
    /// mutation, instead of the historical per-node, per-variable scan.
    fn refresh_interesting(&mut self, n: usize) {
        if self.interesting_gen == self.generation && self.interesting.len() == n {
            return;
        }
        let mut mask = std::mem::take(&mut self.interesting);
        mask.clear();
        mask.resize(n, false);
        for e in &self.inequalities {
            for &(_, v) in &e.terms {
                let r = self.find(v.0) as usize;
                if r < n {
                    mask[r] = true;
                }
            }
        }
        let mut vs = Vec::new();
        for c in &self.residual {
            vs.clear();
            c.vars(&mut vs);
            for v in &vs {
                let r = self.find(v.0) as usize;
                if r < n {
                    mask[r] = true;
                }
            }
        }
        self.interesting = mask;
        self.interesting_gen = self.generation;
    }

    /// Extracts a model at a search leaf. The integer/kind/float
    /// working vectors are engine-owned scratch (recycled across
    /// solves) and the returned model's assignment buffer is drawn
    /// from the [`Engine::recycle_model`] pool, so a warm SAT solve
    /// allocates nothing here.
    fn build_leaf(&mut self, store: &Store) -> Option<Model> {
        let mut ints = std::mem::take(&mut self.leaf_ints);
        let mut kinds = std::mem::take(&mut self.leaf_kinds);
        let mut floats = std::mem::take(&mut self.leaf_floats);
        let result = self.build_leaf_into(store, &mut ints, &mut kinds, &mut floats);
        self.leaf_ints = ints;
        self.leaf_kinds = kinds;
        self.leaf_floats = floats;
        result
    }

    fn build_leaf_into(
        &mut self,
        store: &Store,
        ints: &mut Vec<i64>,
        kinds: &mut Vec<Kind>,
        float_vals: &mut Vec<f64>,
    ) -> Option<Model> {
        let n = store.lo.len();
        // Integer assignment: clamp a preferred default into bounds.
        ints.clear();
        ints.resize(n, 0i64);
        for (i, slot) in ints.iter_mut().enumerate() {
            let r = self.find(i as u32) as usize;
            let (lo, hi) = (store.lo[r], store.hi[r]);
            if lo > hi {
                return None;
            }
            let mut v = 0i64.clamp(lo, hi);
            let excluded = &store.excluded[r];
            if excluded.contains(&v) {
                let mut w = v;
                while excluded.contains(&w) && w < hi {
                    w += 1;
                }
                if excluded.contains(&w) {
                    w = v;
                    while excluded.contains(&w) && w > lo {
                        w -= 1;
                    }
                }
                if excluded.contains(&w) {
                    return None;
                }
                v = w;
            }
            *slot = v;
        }
        // Kind assignment per root; prefer the first kind in the set.
        kinds.clear();
        kinds.resize(n, Kind::SmallInt);
        for (i, slot) in kinds.iter_mut().enumerate() {
            let r = self.find(i as u32) as usize;
            *slot = store.kinds[r].first()?;
        }
        // Float assignment: enumerate candidates.
        if !self.solve_floats_into(float_vals) {
            return None;
        }
        // Residual Ne check.
        let eval_int = |v: VarId| ints[self.find(v.0) as usize];
        for c in &self.residual {
            if let Constraint::Int(CmpOp::Ne, l, r) = c {
                if l.eval(eval_int) == r.eval(eval_int) {
                    return None;
                }
            }
        }
        // Distinctness is structural; aliasing already validated.
        let mut assignments = match self.apool.pop() {
            Some(a) => {
                self.tstats.pool_hits += 1;
                a
            }
            None => {
                self.tstats.pool_misses += 1;
                Vec::new()
            }
        };
        assignments.clear();
        for (i, &kind) in kinds.iter().enumerate().take(n) {
            let r = self.find(i as u32);
            assignments.push(Assignment {
                kind,
                int: ints[r as usize],
                float: float_vals[r as usize],
                alias: r,
            });
        }
        Some(Model::new(assignments))
    }

    /// Fills `vals` with a satisfying float assignment (one value per
    /// variable). Returns false when the float constraints cannot be
    /// satisfied from the candidate pool.
    fn solve_floats_into(&self, vals: &mut Vec<f64>) -> bool {
        let n = self.nvars;
        vals.clear();
        vals.resize(n, 1.5f64);
        if self.floats.is_empty() {
            return true;
        }
        // Collect the float variables mentioned.
        let mut fvars: Vec<usize> = Vec::new();
        let mut pool: Vec<f64> = vec![0.0, 1.5, -2.5, 3.25, 100.25, -0.5];
        for c in &self.floats {
            if let Constraint::Float(_, l, r) = c {
                for t in [l, r] {
                    match t {
                        FloatTerm::Var(v) => {
                            let root = self.find(v.0) as usize;
                            if !fvars.contains(&root) {
                                fvars.push(root);
                            }
                        }
                        FloatTerm::Const(c) => {
                            for d in [-1.0, 0.0, 1.0] {
                                let cand = c + d;
                                if !pool.iter().any(|p| p == &cand) {
                                    pool.push(cand);
                                }
                            }
                        }
                    }
                }
            }
        }
        // Brute-force up to 4 variables over the pool.
        if fvars.len() > 4 {
            return false;
        }
        let check = |vals: &Vec<f64>| {
            self.floats.iter().all(|c| match c {
                Constraint::Float(op, l, r) => {
                    let get = |t: &FloatTerm| match t {
                        FloatTerm::Var(v) => vals[self.find(v.0) as usize],
                        FloatTerm::Const(c) => *c,
                    };
                    op.holds_float(get(l), get(r))
                }
                _ => true,
            })
        };
        fn assign(
            fvars: &[usize],
            pool: &[f64],
            vals: &mut Vec<f64>,
            check: &dyn Fn(&Vec<f64>) -> bool,
        ) -> bool {
            match fvars.split_first() {
                None => check(vals),
                Some((&v, rest)) => {
                    for &cand in pool {
                        vals[v] = cand;
                        if assign(rest, pool, vals, check) {
                            return true;
                        }
                    }
                    false
                }
            }
        }
        if assign(&fvars, &pool, vals, &check) {
            // Propagate root values to aliased members.
            let out: Vec<f64> = (0..n).map(|i| vals[self.find(i as u32) as usize]).collect();
            *vals = out;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SMALL_INT_MAX, SMALL_INT_MIN};

    #[test]
    fn trivial_problem_solves() {
        let p = Problem::new();
        let m = solve(&p).unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn single_kind_constraint() {
        let mut p = Problem::new();
        let v = p.new_var(VarSpec::any());
        p.assert(Constraint::kind_is(v, Kind::Float));
        let m = solve(&p).unwrap();
        assert_eq!(m.kind(v), Kind::Float);
    }

    #[test]
    fn contradictory_kinds_are_unsat() {
        let mut p = Problem::new();
        let v = p.new_var(VarSpec::any());
        p.assert(Constraint::kind_is(v, Kind::Float));
        p.assert(Constraint::kind_is(v, Kind::SmallInt));
        assert_eq!(solve(&p), Err(SolveError::Unsat));
    }

    #[test]
    fn integer_bounds_propagate() {
        let mut p = Problem::new();
        let x = p.new_var(VarSpec::any());
        p.assert(Constraint::Int(CmpOp::Ge, LinExpr::var(x), LinExpr::constant(10)));
        p.assert(Constraint::Int(CmpOp::Lt, LinExpr::var(x), LinExpr::constant(12)));
        let m = solve(&p).unwrap();
        assert!((10..12).contains(&m.int_value(x)));
    }

    #[test]
    fn overflow_pair_is_found() {
        // The classic bytecodePrimAdd overflow path of Table 1.
        let mut p = Problem::new();
        let x = p.new_var(VarSpec::any());
        let y = p.new_var(VarSpec::any());
        p.assert(Constraint::kind_is(x, Kind::SmallInt));
        p.assert(Constraint::kind_is(y, Kind::SmallInt));
        let sum = LinExpr::var(x).plus(&LinExpr::var(y));
        p.assert(Constraint::not_in_small_int_range(sum));
        let m = solve(&p).unwrap();
        let s = m.int_value(x) + m.int_value(y);
        assert!(!(SMALL_INT_MIN..=SMALL_INT_MAX).contains(&s), "sum {s} in range");
    }

    #[test]
    fn equality_pins_value() {
        let mut p = Problem::new();
        let x = p.new_var(VarSpec::any());
        p.assert(Constraint::Int(CmpOp::Eq, LinExpr::var(x), LinExpr::constant(-77)));
        let m = solve(&p).unwrap();
        assert_eq!(m.int_value(x), -77);
    }

    #[test]
    fn disequality_avoids_value() {
        let mut p = Problem::new();
        let x = p.new_var(VarSpec::counter(3));
        p.assert(Constraint::Int(CmpOp::Ne, LinExpr::var(x), LinExpr::constant(0)));
        let m = solve(&p).unwrap();
        assert_ne!(m.int_value(x), 0);
        assert!((0..=3).contains(&m.int_value(x)));
    }

    #[test]
    fn unsat_interval() {
        let mut p = Problem::new();
        let x = p.new_var(VarSpec::any());
        p.assert(Constraint::Int(CmpOp::Gt, LinExpr::var(x), LinExpr::constant(5)));
        p.assert(Constraint::Int(CmpOp::Lt, LinExpr::var(x), LinExpr::constant(5)));
        assert_eq!(solve(&p), Err(SolveError::Unsat));
    }

    #[test]
    fn or_branches_are_explored() {
        let mut p = Problem::new();
        let x = p.new_var(VarSpec::counter(100));
        // (x > 50) or (x == 7), but also x < 20 — forces the second branch.
        p.assert(Constraint::Or(vec![
            Constraint::Int(CmpOp::Gt, LinExpr::var(x), LinExpr::constant(50)),
            Constraint::Int(CmpOp::Eq, LinExpr::var(x), LinExpr::constant(7)),
        ]));
        p.assert(Constraint::Int(CmpOp::Lt, LinExpr::var(x), LinExpr::constant(20)));
        let m = solve(&p).unwrap();
        assert_eq!(m.int_value(x), 7);
    }

    #[test]
    fn object_identity_aliases() {
        let mut p = Problem::new();
        let a = p.new_var(VarSpec::any());
        let b = p.new_var(VarSpec::any());
        let c = p.new_var(VarSpec::any());
        p.assert(Constraint::ObjEq(a, b));
        p.assert(Constraint::ObjNe(a, c));
        p.assert(Constraint::kind_is(a, Kind::Array));
        let m = solve(&p).unwrap();
        assert!(m.same_object(a, b));
        assert!(!m.same_object(a, c));
        assert_eq!(m.kind(b), Kind::Array, "aliased vars share kind");
    }

    #[test]
    fn aliased_distinct_is_unsat() {
        let mut p = Problem::new();
        let a = p.new_var(VarSpec::any());
        let b = p.new_var(VarSpec::any());
        p.assert(Constraint::ObjEq(a, b));
        p.assert(Constraint::ObjNe(a, b));
        assert_eq!(solve(&p), Err(SolveError::Unsat));
    }

    #[test]
    fn float_comparison_solved_from_pool() {
        let mut p = Problem::new();
        let x = p.new_var(VarSpec::any());
        let y = p.new_var(VarSpec::any());
        p.assert(Constraint::kind_is(x, Kind::Float));
        p.assert(Constraint::kind_is(y, Kind::Float));
        p.assert(Constraint::Float(CmpOp::Lt, FloatTerm::Var(x), FloatTerm::Var(y)));
        p.assert(Constraint::Float(CmpOp::Gt, FloatTerm::Var(x), FloatTerm::Const(0.0)));
        let m = solve(&p).unwrap();
        assert!(m.float_value(x) < m.float_value(y));
        assert!(m.float_value(x) > 0.0);
    }

    #[test]
    fn precision_gate_rejects_wide_integers() {
        let mut p = Problem::new();
        let x = p.new_var(VarSpec::any());
        p.assert(Constraint::Int(CmpOp::Lt, LinExpr::var(x), LinExpr::constant(1 << 60)));
        assert_eq!(solve(&p), Err(SolveError::PrecisionExceeded));
    }

    #[test]
    fn kind_negation_prefers_float_over_object() {
        // Negating isSmallInteger(v) should produce a *typed* object,
        // not bit-twiddled garbage (§3.3 of the paper).
        let mut p = Problem::new();
        let v = p.new_var(VarSpec::any());
        p.assert(Constraint::kind_is_not(v, Kind::SmallInt));
        let m = solve(&p).unwrap();
        assert_ne!(m.kind(v), Kind::SmallInt);
    }

    #[test]
    fn counter_vars_start_at_zero() {
        let mut p = Problem::new();
        let size = p.new_var(VarSpec::counter(100));
        let m = solve(&p).unwrap();
        assert_eq!(m.int_value(size), 0, "unconstrained counters pick 0");
    }

    #[test]
    fn stack_growth_scenario() {
        // Fig. 2: negating operand_stack_size <= 1 yields size >= 2.
        let mut p = Problem::new();
        let size = p.new_var(VarSpec::counter(100));
        p.assert(
            Constraint::Int(CmpOp::Le, LinExpr::var(size), LinExpr::constant(1)).negated(),
        );
        let m = solve(&p).unwrap();
        assert!(m.int_value(size) >= 2);
    }

    #[test]
    fn three_var_linear_combination() {
        let mut p = Problem::new();
        let a = p.new_var(VarSpec::int_in(0, 10));
        let b = p.new_var(VarSpec::int_in(0, 10));
        let c = p.new_var(VarSpec::int_in(0, 10));
        // a + 2b - c == 9, a < b
        let lhs = LinExpr::var(a)
            .plus(&LinExpr::scaled_var(2, b))
            .minus(&LinExpr::var(c));
        p.assert(Constraint::Int(CmpOp::Eq, lhs, LinExpr::constant(9)));
        p.assert(Constraint::Int(CmpOp::Lt, LinExpr::var(a), LinExpr::var(b)));
        let m = solve(&p).unwrap();
        let (va, vb, vc) = (m.int_value(a), m.int_value(b), m.int_value(c));
        assert_eq!(va + 2 * vb - vc, 9);
        assert!(va < vb);
    }

    #[test]
    fn resource_limit_reported() {
        let mut p = Problem::new();
        // A chain of interlocking disjunctions to blow the node budget.
        let vars: Vec<_> = (0..12).map(|_| p.new_var(VarSpec::int_in(0, 1000))).collect();
        for w in vars.windows(2) {
            p.assert(Constraint::Or(vec![
                Constraint::Int(CmpOp::Lt, LinExpr::var(w[0]), LinExpr::var(w[1])),
                Constraint::Int(CmpOp::Gt, LinExpr::var(w[0]), LinExpr::var(w[1])),
            ]));
        }
        // Contradiction at the end so it must exhaust branches.
        p.assert(Constraint::Int(CmpOp::Lt, LinExpr::var(vars[0]), LinExpr::constant(0)));
        let r = solve_with_limits(&p, SearchLimits { max_nodes: 10 });
        assert!(matches!(r, Err(SolveError::ResourceLimit) | Err(SolveError::Unsat)));
    }
}
