//! # igjit-solver — semantic VM constraint solving
//!
//! The concolic engine of the paper records *semantic* conditions
//! (§3.3) — `isSmallInteger(v)`, class-index tests, integer bounds —
//! rather than the raw pointer arithmetic the VM really performs. This
//! crate is the reproduction's constraint solver for exactly that
//! language:
//!
//! * **kind constraints** — each variable's runtime kind is drawn from
//!   a [`KindSet`] (SmallInteger, Float, Array, …); negation is set
//!   complement, which is what makes `isNotSmallInteger` meaningful
//!   where bit-level `(v & 1) != 1` would not be,
//! * **bounded linear integer arithmetic** — comparisons between
//!   [`LinExpr`]s over the integer attributes of variables (values,
//!   operand-stack sizes, slot counts), solved by interval propagation
//!   plus backtracking search,
//! * **float constraints** — comparisons solved over a candidate pool
//!   (enough for the type-check-dominated float paths of the VM),
//! * **object identity** — equality/distinctness between object
//!   variables, solved by aliasing.
//!
//! Mirroring §4.3 of the paper, the solver deliberately rejects
//! problems mentioning integers that need more than **56 bits** with
//! [`SolveError::PrecisionExceeded`], and offers **no bitwise theory**
//! at all — the VM model above it is expected to stay semantic.
//!
//! ## Example
//!
//! ```
//! use igjit_solver::*;
//!
//! let mut p = Problem::new();
//! let x = p.new_var(VarSpec::any());
//! let y = p.new_var(VarSpec::any());
//! // x and y are SmallIntegers whose sum overflows the 31-bit range.
//! p.assert(Constraint::kind_is(x, Kind::SmallInt));
//! p.assert(Constraint::kind_is(y, Kind::SmallInt));
//! let sum = LinExpr::var(x).plus(&LinExpr::var(y));
//! p.assert(Constraint::not_in_small_int_range(sum));
//! let model = solve(&p).unwrap();
//! let vx = model.int_value(x);
//! let vy = model.int_value(y);
//! assert!(vx + vy > igjit_solver::SMALL_INT_MAX || vx + vy < igjit_solver::SMALL_INT_MIN);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod constraint;
mod error;
mod intern;
mod model;
mod search;
mod session;

pub use constraint::{CmpOp, Constraint, FloatTerm, Kind, KindSet, LinExpr, VarId, VarSpec};
pub use error::SolveError;
pub use intern::{ConstraintId, TermId, TermTable};
pub use model::{Assignment, Model};
pub use search::{solve, solve_with_limits, Problem, SearchLimits, TrailStats};
pub use session::{PreparedConstraint, Session, SessionStats};

/// Checks that `model` satisfies every constraint of `problem` and
/// every variable's initial domain — the solver's soundness contract,
/// used by the property tests and available to callers that want to
/// validate cached models.
pub fn check_model(problem: &Problem, model: &Model) -> bool {
    check_model_parts(problem.specs(), problem.constraints(), model)
}

/// [`check_model`] over borrowed specs and constraints, for callers
/// (like the incremental [`Session`]) that keep the parts separately
/// and should not have to clone them into a [`Problem`] per check.
pub fn check_model_parts(specs: &[VarSpec], constraints: &[Constraint], model: &Model) -> bool {
    for (i, spec) in specs.iter().enumerate() {
        let v = VarId(i as u32);
        if !spec.kinds.contains(model.kind(v)) {
            return false;
        }
        let int = model.int_value(v);
        if int < spec.int_bounds.0 || int > spec.int_bounds.1 {
            return false;
        }
    }
    constraints.iter().all(|c| constraint_holds(c, model))
}

fn constraint_holds(c: &Constraint, model: &Model) -> bool {
    match c {
        Constraint::Kind { var, allowed } => allowed.contains(model.kind(*var)),
        Constraint::Int(op, l, r) => {
            let lv = l.eval(|v| model.int_value(v));
            let rv = r.eval(|v| model.int_value(v));
            op.holds_int(lv, rv)
        }
        Constraint::Float(op, l, r) => {
            let get = |t: &FloatTerm| match t {
                FloatTerm::Var(v) => model.float_value(*v),
                FloatTerm::Const(c) => *c,
            };
            op.holds_float(get(l), get(r))
        }
        Constraint::ObjEq(a, b) => model.same_object(*a, *b),
        Constraint::ObjNe(a, b) => !model.same_object(*a, *b),
        Constraint::Or(cs) => cs.iter().any(|c| constraint_holds(c, model)),
        Constraint::And(cs) => cs.iter().all(|c| constraint_holds(c, model)),
    }
}

/// Largest SmallInteger of the 32-bit target (2^30 - 1).
pub const SMALL_INT_MAX: i64 = (1 << 30) - 1;
/// Smallest SmallInteger of the 32-bit target (-2^30).
pub const SMALL_INT_MIN: i64 = -(1 << 30);
/// The solver's integer precision in bits (§4.3: the paper's solver
/// handled at most 56-bit integers, restricting testing to 32-bit
/// compilations).
pub const PRECISION_BITS: u32 = 56;

/// Compile-time source fingerprint (see `igjit-corpus`).
pub mod srcid;
