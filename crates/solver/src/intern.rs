//! Hash-consed constraint terms.
//!
//! The concolic explorer asserts the same constraints over and over:
//! every path in an instruction's negation tree shares its whole
//! prefix with its siblings, and a 16 k-solve campaign sweep re-asserts
//! a few hundred distinct atoms tens of thousands of times. A
//! [`TermTable`] gives each structurally-distinct [`LinExpr`] and
//! [`Constraint`] one small integer id, so repeated work — wideness
//! checks, normalization into the engine's inequality form, path-
//! signature comparison — can key off the id instead of re-walking
//! (or re-printing) the term tree.
//!
//! Composite terms are keyed over the ids of their children (classic
//! hash-consing), so interning a deep `And`/`Or` tree costs one map
//! lookup per node the first time and one lookup total thereafter.
//! Float constants are keyed by their bit pattern (`f64::to_bits`),
//! with every NaN collapsed onto the canonical NaN — the same
//! equivalence `{:?}`-formatting gives, so interned identity agrees
//! with the explorer's historical textual path signatures.

use igjit_heap::fxhash::FxHashMap;

use crate::constraint::{CmpOp, Constraint, FloatTerm, KindSet, LinExpr, VarId};

/// Identifies one interned [`LinExpr`] within a [`TermTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TermId(pub u32);

/// Identifies one interned [`Constraint`] within a [`TermTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ConstraintId(pub u32);

/// A float term keyed by bit pattern, NaN-canonicalized.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum FloatKey {
    Var(VarId),
    Const(u64),
}

impl FloatKey {
    fn of(t: &FloatTerm) -> FloatKey {
        match t {
            FloatTerm::Var(v) => FloatKey::Var(*v),
            FloatTerm::Const(c) => {
                let canonical = if c.is_nan() { f64::NAN } else { *c };
                FloatKey::Const(canonical.to_bits())
            }
        }
    }
}

/// Structural key of a constraint, with subterms replaced by their
/// interned ids.
#[derive(Clone, PartialEq, Eq, Hash)]
enum ConstraintKey {
    Kind(VarId, KindSet),
    Int(CmpOp, TermId, TermId),
    Float(CmpOp, FloatKey, FloatKey),
    ObjEq(VarId, VarId),
    ObjNe(VarId, VarId),
    Or(Vec<ConstraintId>),
    And(Vec<ConstraintId>),
}

/// The hash-consing table: one id per structurally-distinct expression
/// or constraint ever interned.
#[derive(Default)]
pub struct TermTable {
    exprs: Vec<LinExpr>,
    expr_ids: FxHashMap<LinExpr, TermId>,
    constraints: Vec<Constraint>,
    constraint_ids: FxHashMap<ConstraintKey, ConstraintId>,
}

impl TermTable {
    /// An empty table.
    pub fn new() -> TermTable {
        TermTable::default()
    }

    /// Interns a linear expression, returning its stable id.
    pub fn intern_expr(&mut self, e: &LinExpr) -> TermId {
        if let Some(&id) = self.expr_ids.get(e) {
            return id;
        }
        let id = TermId(self.exprs.len() as u32);
        self.exprs.push(e.clone());
        self.expr_ids.insert(e.clone(), id);
        id
    }

    /// The expression behind an id.
    pub fn expr(&self, id: TermId) -> &LinExpr {
        &self.exprs[id.0 as usize]
    }

    /// Interns a constraint (and, recursively, every subterm),
    /// returning its stable id. Two constraints get the same id iff
    /// they are structurally equal, with all NaN float constants
    /// considered equal.
    pub fn intern(&mut self, c: &Constraint) -> ConstraintId {
        let key = match c {
            Constraint::Kind { var, allowed } => ConstraintKey::Kind(*var, *allowed),
            Constraint::Int(op, l, r) => {
                ConstraintKey::Int(*op, self.intern_expr(l), self.intern_expr(r))
            }
            Constraint::Float(op, l, r) => {
                ConstraintKey::Float(*op, FloatKey::of(l), FloatKey::of(r))
            }
            Constraint::ObjEq(a, b) => ConstraintKey::ObjEq(*a, *b),
            Constraint::ObjNe(a, b) => ConstraintKey::ObjNe(*a, *b),
            Constraint::Or(cs) => {
                ConstraintKey::Or(cs.iter().map(|c| self.intern(c)).collect())
            }
            Constraint::And(cs) => {
                ConstraintKey::And(cs.iter().map(|c| self.intern(c)).collect())
            }
        };
        if let Some(&id) = self.constraint_ids.get(&key) {
            return id;
        }
        let id = ConstraintId(self.constraints.len() as u32);
        self.constraints.push(c.clone());
        self.constraint_ids.insert(key, id);
        id
    }

    /// The (first-interned) constraint behind an id.
    pub fn constraint(&self, id: ConstraintId) -> &Constraint {
        &self.constraints[id.0 as usize]
    }

    /// Number of distinct constraints interned.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Kind;

    fn lt(v: VarId, c: i64) -> Constraint {
        Constraint::Int(CmpOp::Lt, LinExpr::var(v), LinExpr::constant(c))
    }

    #[test]
    fn equal_constraints_share_an_id() {
        let mut t = TermTable::new();
        let a = t.intern(&lt(VarId(0), 5));
        let b = t.intern(&lt(VarId(0), 5));
        let c = t.intern(&lt(VarId(0), 6));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.len(), 2);
        assert_eq!(t.constraint(a), &lt(VarId(0), 5));
    }

    #[test]
    fn composite_terms_hash_cons_their_children() {
        let mut t = TermTable::new();
        let x = VarId(0);
        let or1 = Constraint::Or(vec![lt(x, 1), lt(x, 2)]);
        let or2 = Constraint::Or(vec![lt(x, 1), lt(x, 2)]);
        let id1 = t.intern(&or1);
        let id2 = t.intern(&or2);
        assert_eq!(id1, id2);
        // Two leaves plus the Or itself.
        assert_eq!(t.len(), 3);
        // The And over the same leaves reuses them.
        t.intern(&Constraint::And(vec![lt(x, 1), lt(x, 2)]));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn expr_interning_is_structural() {
        let mut t = TermTable::new();
        let x = VarId(3);
        let e1 = LinExpr::var(x).plus(&LinExpr::constant(4));
        let e2 = LinExpr::var(x).offset(4);
        assert_eq!(t.intern_expr(&e1), t.intern_expr(&e2));
        let id = t.intern_expr(&e1);
        assert_eq!(t.expr(id), &e1);
    }

    #[test]
    fn nan_floats_collapse_but_zero_signs_do_not() {
        let mut t = TermTable::new();
        let v = VarId(0);
        let f = |c: f64| Constraint::Float(CmpOp::Eq, FloatTerm::Var(v), FloatTerm::Const(c));
        assert_eq!(t.intern(&f(f64::NAN)), t.intern(&f(-f64::NAN)));
        assert_ne!(t.intern(&f(0.0)), t.intern(&f(-0.0)));
    }

    #[test]
    fn kind_constraints_key_on_the_set() {
        let mut t = TermTable::new();
        let v = VarId(1);
        let a = t.intern(&Constraint::kind_is(v, Kind::Float));
        let b = t.intern(&Constraint::kind_is(v, Kind::Float));
        let c = t.intern(&Constraint::kind_is_not(v, Kind::Float));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
