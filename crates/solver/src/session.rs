//! Incremental solving: push/pop assertion scopes.
//!
//! Concolic exploration solves a *tree* of path conditions where every
//! child shares its whole prefix with its parent. A [`Session`] keeps
//! the engine's classification and interval-propagation state alive
//! across [`push`](Session::push)/[`pop`](Session::pop) scopes, so each
//! child costs one constraint assertion plus an incremental propagation
//! round instead of a full rebuild — the push/pop interface popularized
//! by Z3 and used by SMT-driven concolic engines like SAGE.
//!
//! Determinism contract: for any scope state, [`Session::solve`]
//! returns exactly what [`crate::solve`] returns for a [`Problem`]
//! holding the same variables and the same in-scope constraints in
//! assertion order. The campaign's row-for-row reproducibility depends
//! on this; the `session_equivalence` property test enforces it.

use igjit_heap::fxhash::FxHashMap;

use crate::constraint::{Constraint, VarId, VarSpec};
use crate::error::SolveError;
use crate::intern::{ConstraintId, TermTable};
use crate::model::Model;
use crate::search::{
    constraint_is_wide, solve_counted, spec_is_wide, Engine, EngineMark, NormPlan, SearchLimits,
    Store, TrailStats,
};
use crate::{check_model_parts, Problem};

/// Counters describing the work an incremental [`Session`] performed,
/// merged into the campaign metrics (`*.metrics.json`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Total `solve()` calls.
    pub solves: usize,
    /// Solves that produced a model.
    pub sat: usize,
    /// Solves that returned `Unsat`.
    pub unsat: usize,
    /// Search nodes visited across all solves.
    pub nodes_visited: usize,
    /// Solves answered from incrementally-maintained propagation state
    /// (no from-scratch rebuild).
    pub propagation_reuse: usize,
    /// Solves that had to rebuild from scratch (an `ObjEq` entered a
    /// scope, forcing re-aliasing).
    pub rebuilds: usize,
    /// Solves answered by revalidating the previous model
    /// (only with [`Session::set_reuse_models`]).
    pub model_reuse: usize,
    /// Total scopes pushed.
    pub pushes: usize,
    /// Deepest scope stack observed at a solve.
    pub max_depth: usize,
}

impl SessionStats {
    /// Accumulates `other` into `self` (sums; max for depth).
    pub fn merge(&mut self, other: &SessionStats) {
        self.solves += other.solves;
        self.sat += other.sat;
        self.unsat += other.unsat;
        self.nodes_visited += other.nodes_visited;
        self.propagation_reuse += other.propagation_reuse;
        self.rebuilds += other.rebuilds;
        self.model_reuse += other.model_reuse;
        self.pushes += other.pushes;
        self.max_depth = self.max_depth.max(other.max_depth);
    }
}

struct Scope {
    n_constraints: usize,
    saved_wide: usize,
    saved_dirty: bool,
    /// Engine checkpoint taken at push time; `None` while the session
    /// is dirty (the engine is stale and a rebuild decides anyway).
    saved: Option<Checkpoint>,
}

/// A cheap engine checkpoint: the classified-constraint lists are
/// append-only between scopes (sessions never union — aliasing forces
/// the dirty rebuild path), so restoring is a truncation plus undoing
/// the interval store back to the scope's state. In trail mode
/// (default) the store restores by unwinding its undo log to
/// `trail_mark` — pushing costs O(1); in clone mode (`set_trail(false)`)
/// `store` holds the pre-scope copy and pop swaps it back — the
/// engine-v3 behaviour, kept as the semantics baseline the trail is
/// equivalence-tested against.
struct Checkpoint {
    mark: EngineMark,
    nvars: usize,
    /// Pre-scope store copy (clone mode only).
    store: Option<Store>,
    /// Trail position at push (trail mode only).
    trail_mark: usize,
    conflict: bool,
}

/// A hypothesis pre-classified for repeated [`Session::solve_under`]
/// use: the constraint together with its normalization plan and
/// wide/aliasing flags, built once by the caller and replayed on every
/// solve. A probe sweep tries the same dozen hypotheses against
/// thousands of sibling paths; preparing them hoists the per-solve
/// constraint-tree walk (wideness check plus `assert_into`'s expression
/// normalization) out of the loop, independent of whether the session
/// hash-conses.
pub struct PreparedConstraint {
    constraint: Constraint,
    plan: NormPlan,
}

impl PreparedConstraint {
    /// Classifies and normalizes `c` once, for any number of
    /// [`Session::solve_under_prepared`] calls (on any session).
    pub fn new(c: Constraint) -> PreparedConstraint {
        PreparedConstraint { plan: NormPlan::build(&c), constraint: c }
    }

    /// The underlying hypothesis.
    pub fn constraint(&self) -> &Constraint {
        &self.constraint
    }
}

/// An incremental solver session with push/pop assertion scopes.
///
/// Variables are global to the session (they persist across `pop`);
/// constraints belong to the scope they were asserted in. Between
/// scopes the session keeps the classified constraints and the
/// interval store at their propagated fixpoint, so a child scope's
/// solve starts from its parent's propagation instead of from scratch.
pub struct Session {
    specs: Vec<VarSpec>,
    constraints: Vec<Constraint>,
    scopes: Vec<Scope>,
    engine: Engine,
    store: Store,
    /// A hard structural conflict was found while asserting (empty
    /// kind set, aliased-distinct pair, empty interval): solve is
    /// `Unsat` without searching.
    conflict: bool,
    /// A top-level `ObjEq` entered the current scope: aliasing cannot
    /// be asserted incrementally (union-find has no un-union), so
    /// solves rebuild from scratch until the scope pops.
    dirty: bool,
    /// In-scope constraints violating the 56-bit precision gate.
    wide: usize,
    /// Any variable spec violating the precision gate (permanent:
    /// variables are never popped).
    wide_specs: bool,
    limits: SearchLimits,
    last_model: Option<Model>,
    reuse_models: bool,
    /// Hash-cons asserted constraints: repeated assertions of a
    /// structurally-known constraint replay its cached normalization
    /// instead of re-classifying the term tree.
    hash_cons: bool,
    /// Scope backtracking by undo log (default) instead of per-scope
    /// store clones; see [`Session::set_trail`].
    trail: bool,
    table: TermTable,
    norm_plans: FxHashMap<ConstraintId, NormPlan>,
    /// Retired models ([`Session::recycle_model`]) whose buffers back
    /// the model-reuse fast path's returned copies.
    model_pool: Vec<Model>,
    stats: SessionStats,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    /// An empty session with default search limits.
    pub fn new() -> Session {
        Session::with_limits(SearchLimits::default())
    }

    /// An empty session with explicit search limits (applied per
    /// solve, like [`crate::solve_with_limits`]).
    pub fn with_limits(limits: SearchLimits) -> Session {
        let engine = Engine::new(0);
        let mut store = engine.init_store(&[]);
        store.set_trail(true);
        Session {
            specs: Vec::new(),
            constraints: Vec::new(),
            scopes: Vec::new(),
            engine,
            store,
            conflict: false,
            dirty: false,
            wide: 0,
            wide_specs: false,
            limits,
            last_model: None,
            reuse_models: false,
            hash_cons: false,
            trail: true,
            table: TermTable::new(),
            norm_plans: FxHashMap::default(),
            model_pool: Vec::new(),
            stats: SessionStats::default(),
        }
    }

    /// Chooses how scopes backtrack: `true` (the default) records
    /// every interval narrowing on an undo log and unwinds it at scope
    /// exit; `false` restores the engine-v3 behaviour of cloning the
    /// interval store per scope. Semantically invisible either way —
    /// the `trail_equivalence` property tests pin results, models and
    /// [`SessionStats`] byte-identical between the modes. Flip it only
    /// on a session with no open scopes (the explorer configures
    /// sessions before use); checkpoints taken in one mode are
    /// restored in that mode.
    pub fn set_trail(&mut self, on: bool) {
        debug_assert!(self.scopes.is_empty(), "set_trail with open scopes");
        self.trail = on;
        self.store.set_trail(on);
    }

    /// The trail-mode work counters (zero when [`Session::set_trail`]
    /// is off, except the clone-path pool counters).
    pub fn trail_stats(&self) -> TrailStats {
        self.engine.tstats
    }

    /// Donates a model the caller is done with: its buffer re-backs
    /// future model extractions and reuse-path copies, keeping the
    /// solve → inspect → discard cycle allocation-free once warm.
    pub fn recycle_model(&mut self, m: Model) {
        if self.model_pool.len() < 32 {
            self.model_pool.push(m);
        } else {
            self.engine.recycle_model(m);
        }
    }

    /// Opt into hash-consing asserted constraints (see
    /// [`crate::TermTable`]). Semantically invisible: the session
    /// answers every solve exactly as without it — only the work of
    /// re-normalizing repeated constraints is saved. Off by default so
    /// one-shot sessions don't pay for the table.
    pub fn set_hash_cons(&mut self, on: bool) {
        self.hash_cons = on;
    }

    /// Opt into answering solves by revalidating the previous model
    /// against the in-scope constraints before searching.
    ///
    /// This is faster but intentionally **off** by default: a reused
    /// model can differ from the one a fresh search would pick, which
    /// would break the campaign's model-for-model reproducibility.
    pub fn set_reuse_models(&mut self, on: bool) {
        self.reuse_models = on;
    }

    /// Drops the model cached for [`Session::set_reuse_models`]
    /// revalidation. Callers that batch several independent problems
    /// through one session (scoped by push/pop) clear between batches
    /// so a model from one problem can never answer the next — keeping
    /// each batch's solves exactly what a fresh session would return.
    pub fn clear_cached_model(&mut self) {
        if let Some(m) = self.last_model.take() {
            self.recycle_model(m);
        }
    }

    /// Introduces a fresh variable. Variables are session-global: they
    /// survive `pop` (matching the explorer's ever-growing
    /// `AbstractState`).
    pub fn add_var(&mut self, spec: VarSpec) -> VarId {
        let id = VarId(self.specs.len() as u32);
        if spec_is_wide(&spec) {
            self.wide_specs = true;
        }
        self.specs.push(spec);
        id
    }

    /// Appends any variables of `specs` the session does not have yet
    /// (by index). The common caller keeps one growing spec list — the
    /// explorer's abstract state — and re-syncs before each solve.
    pub fn sync_vars(&mut self, specs: &[VarSpec]) {
        for spec in specs.iter().skip(self.specs.len()) {
            self.add_var(*spec);
        }
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.specs.len()
    }

    /// Current scope depth (0 = base scope).
    pub fn depth(&self) -> usize {
        self.scopes.len()
    }

    /// The in-scope constraints, in assertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The work counters accumulated so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Opens a new assertion scope.
    pub fn push(&mut self) {
        self.stats.pushes += 1;
        let saved = if self.dirty {
            None
        } else {
            self.ensure_synced();
            let store = if self.trail {
                self.engine.tstats.trail_marks += 1;
                self.engine.tstats.clones_avoided += 1;
                None
            } else {
                Some(self.engine.clone_store(&self.store))
            };
            Some(Checkpoint {
                mark: self.engine.mark(),
                nvars: self.engine.var_count(),
                store,
                trail_mark: self.store.trail_mark(),
                conflict: self.conflict,
            })
        };
        self.scopes.push(Scope {
            n_constraints: self.constraints.len(),
            saved_wide: self.wide,
            saved_dirty: self.dirty,
            saved,
        });
    }

    /// Asserts a constraint into the current scope.
    pub fn assert(&mut self, c: Constraint) {
        if self.hash_cons {
            self.assert_interned(c);
            return;
        }
        if constraint_is_wide(&c) {
            self.wide += 1;
        }
        let is_objeq = matches!(c, Constraint::ObjEq(..));
        self.constraints.push(c);
        if self.dirty {
            return;
        }
        if is_objeq {
            // Aliasing is a union-find pass; it cannot be undone by a
            // list truncation, so the engine goes stale until this
            // scope pops and solves rebuild from scratch.
            self.dirty = true;
            return;
        }
        if self.conflict {
            return;
        }
        self.ensure_synced();
        let c = self.constraints.last().expect("just pushed").clone();
        let first_new = self.engine.ineq_count();
        if self.engine.assert_into(&c, &mut self.store).is_err()
            || !self.engine.check_distinct_consistency()
            || !self.engine.propagate_new(&mut self.store, first_new)
        {
            self.conflict = true;
        }
    }

    /// The hash-consing assert path: classification (wideness, engine
    /// normalization) is computed once per structurally-distinct
    /// constraint and replayed thereafter. Sound because a session's
    /// engine never aliases variables — `ObjEq` flips the dirty flag
    /// before reaching it — so a constraint's normalization cannot
    /// change between scopes.
    fn assert_interned(&mut self, c: Constraint) {
        let id = self.table.intern(&c);
        let plan = self.norm_plans.entry(id).or_insert_with(|| NormPlan::build(&c));
        let (wide, is_objeq) = (plan.wide, plan.objeq);
        self.constraints.push(c);
        if wide {
            self.wide += 1;
        }
        if self.dirty {
            return;
        }
        if is_objeq {
            self.dirty = true;
            return;
        }
        if self.conflict {
            return;
        }
        self.ensure_synced();
        let first_new = self.engine.ineq_count();
        let plan = self.norm_plans.get(&id).expect("plan just cached");
        if self.engine.apply_norm(plan, &mut self.store).is_err()
            || !self.engine.check_distinct_consistency()
            || !self.engine.propagate_new(&mut self.store, first_new)
        {
            self.conflict = true;
        }
    }

    /// `push()` followed by `assert(c)` — the explorer's per-branch step.
    pub fn push_assert(&mut self, c: Constraint) {
        self.push();
        self.assert(c);
    }

    /// Closes the innermost scope, retracting its constraints and
    /// restoring the engine checkpoint taken at `push`.
    ///
    /// # Panics
    /// Panics when no scope is open.
    pub fn pop(&mut self) {
        let scope = self.scopes.pop().expect("pop without matching push");
        self.constraints.truncate(scope.n_constraints);
        self.wide = scope.saved_wide;
        self.dirty = scope.saved_dirty;
        if let Some(cp) = scope.saved {
            self.engine.truncate_to(cp.mark);
            self.engine.truncate_vars(cp.nvars);
            match cp.store {
                Some(store) => {
                    let retired = std::mem::replace(&mut self.store, store);
                    self.engine.recycle_store(retired);
                }
                None => {
                    // Trail mode: unwind the scope's narrowings first
                    // (some touch the variable suffix), then drop
                    // variables added inside the scope.
                    self.engine.tstats.undone_ops += self.store.undo_to(cp.trail_mark);
                    self.store.truncate(cp.nvars);
                }
            }
            self.conflict = cp.conflict;
        }
    }

    /// Solves the conjunction of all in-scope constraints over all
    /// session variables. Equivalent to [`crate::solve_with_limits`]
    /// on the same problem; incremental state only changes how fast
    /// the answer is found.
    pub fn solve(&mut self) -> Result<Model, SolveError> {
        self.stats.solves += 1;
        self.stats.max_depth = self.stats.max_depth.max(self.scopes.len());
        if self.wide > 0 || self.wide_specs {
            return Err(SolveError::PrecisionExceeded);
        }
        if self.reuse_models {
            let hit = match &self.last_model {
                Some(m) => {
                    m.len() == self.specs.len()
                        && check_model_parts(&self.specs, &self.constraints, m)
                }
                None => false,
            };
            if hit {
                self.stats.model_reuse += 1;
                self.stats.sat += 1;
                return Ok(self.pooled_copy_of_last());
            }
        }
        if self.dirty {
            self.stats.rebuilds += 1;
            let (result, nodes) = solve_counted(&self.specs, &self.constraints, self.limits);
            self.stats.nodes_visited += nodes;
            return self.record(result);
        }
        self.stats.propagation_reuse += 1;
        self.ensure_synced();
        if self.conflict {
            return self.record(Err(SolveError::Unsat));
        }
        let mark = self.engine.mark();
        self.engine.nodes_left = self.limits.max_nodes;
        let found = if self.trail {
            self.engine.tstats.trail_marks += 1;
            self.engine.tstats.clones_avoided += 1;
            let tm = self.store.trail_mark();
            let found = self.engine.search_in_place(&mut self.store);
            self.engine.tstats.undone_ops += self.store.undo_to(tm);
            found
        } else {
            let root = self.engine.clone_store(&self.store);
            self.engine.search_incremental(root)
        };
        let nodes = self.limits.max_nodes - self.engine.nodes_left;
        self.stats.nodes_visited += nodes;
        let result = match found {
            Some(model) => Ok(model),
            None => {
                if self.engine.nodes_left == 0 {
                    Err(SolveError::ResourceLimit)
                } else {
                    Err(SolveError::Unsat)
                }
            }
        };
        // The search appends Or-disjunct classifications and returns
        // early on success; restore the scope's classified lists.
        self.engine.truncate_to(mark);
        self.record(result)
    }

    /// Solves the in-scope constraints plus `c` without leaving a
    /// scope behind — observably identical (result, stats, cached
    /// model) to `push(); assert(c); solve(); pop()`, by mirroring
    /// `solve`'s exact branch order (wide gate → model-reuse
    /// revalidation → dirty rebuild → conflict → incremental search).
    ///
    /// The point is cost: the quadruple clones the interval `Store`
    /// twice per hypothesis (the push checkpoint plus the search
    /// root), while this asserts into a single scratch clone and hands
    /// that directly to the search. It is the batched sibling-scope
    /// primitive behind engine v8's kind-probe sweep, where each
    /// curated path tries ~a dozen sibling hypotheses over a shared
    /// prefix.
    pub fn solve_under(&mut self, c: &Constraint) -> Result<Model, SolveError> {
        // Classify the hypothesis without touching the engine,
        // mirroring `assert`/`assert_interned`. The hypothesis is
        // borrowed — probe sweeps re-try the same hypothesis across
        // thousands of sibling paths, and taking it by reference means
        // the caller builds (and the session clones) each constraint
        // tree once instead of once per solve.
        let (wide_c, is_objeq, plan_id) = if self.hash_cons {
            let id = self.table.intern(c);
            let plan = self.norm_plans.entry(id).or_insert_with(|| NormPlan::build(c));
            (plan.wide, plan.objeq, Some(id))
        } else {
            (constraint_is_wide(c), matches!(c, Constraint::ObjEq(..)), None)
        };
        self.solve_under_inner(c, wide_c, is_objeq, plan_id, None)
    }

    /// [`Session::solve_under`] with a caller-prepared hypothesis:
    /// identical results and stats, but the per-solve classification
    /// (and, when hash-consing, the per-solve interning) is replaced by
    /// replaying the prepared normalization plan.
    pub fn solve_under_prepared(&mut self, p: &PreparedConstraint) -> Result<Model, SolveError> {
        self.solve_under_inner(&p.constraint, p.plan.wide, p.plan.objeq, None, Some(&p.plan))
    }

    fn solve_under_inner(
        &mut self,
        c: &Constraint,
        wide_c: bool,
        is_objeq: bool,
        plan_id: Option<ConstraintId>,
        prepared: Option<&NormPlan>,
    ) -> Result<Model, SolveError> {
        self.stats.pushes += 1;
        self.stats.solves += 1;
        self.stats.max_depth = self.stats.max_depth.max(self.scopes.len() + 1);
        if self.wide + usize::from(wide_c) > 0 || self.wide_specs {
            return Err(SolveError::PrecisionExceeded);
        }
        if self.reuse_models {
            // Hypothesis first: it is one constraint and the usual
            // reason reuse fails (a kind-probe sweep asks for a
            // *different* kind than the cached model assigns), so
            // checking it before the full in-scope conjunction
            // short-circuits the common miss. Pure predicates —
            // the reordering cannot change whether reuse fires.
            let hit = match &self.last_model {
                Some(m) => {
                    m.len() == self.specs.len()
                        && check_model_parts(&self.specs, std::slice::from_ref(c), m)
                        && check_model_parts(&self.specs, &self.constraints, m)
                }
                None => false,
            };
            if hit {
                self.stats.model_reuse += 1;
                self.stats.sat += 1;
                return Ok(self.pooled_copy_of_last());
            }
        }
        if self.dirty || is_objeq {
            // Aliasing (or an already-stale engine) rebuilds from
            // scratch exactly as `solve` would with `c` in scope.
            self.stats.rebuilds += 1;
            self.constraints.push(c.clone());
            let (result, nodes) = solve_counted(&self.specs, &self.constraints, self.limits);
            self.constraints.pop();
            self.stats.nodes_visited += nodes;
            return self.record(result);
        }
        self.stats.propagation_reuse += 1;
        self.ensure_synced();
        if self.conflict {
            return self.record(Err(SolveError::Unsat));
        }
        let mark = self.engine.mark();
        let nvars = self.engine.var_count();
        let first_new = self.engine.ineq_count();
        if self.trail {
            // Trail mode: the hypothesis is asserted straight into the
            // live store (every narrowing recorded) and the search runs
            // in place — no scratch clone at all.
            self.engine.tstats.trail_marks += 1;
            self.engine.tstats.clones_avoided += 1;
            let tm = self.store.trail_mark();
            let asserted = if let Some(plan) = prepared {
                self.engine.apply_norm(plan, &mut self.store).is_ok()
            } else {
                match plan_id {
                    Some(id) => {
                        let plan = self.norm_plans.get(&id).expect("plan just cached");
                        self.engine.apply_norm(plan, &mut self.store).is_ok()
                    }
                    None => self.engine.assert_into(c, &mut self.store).is_ok(),
                }
            };
            let result = if !asserted
                || !self.engine.check_distinct_consistency()
                || !self.engine.propagate_new(&mut self.store, first_new)
            {
                Err(SolveError::Unsat)
            } else {
                self.engine.nodes_left = self.limits.max_nodes;
                let found = self.engine.search_in_place(&mut self.store);
                let nodes = self.limits.max_nodes - self.engine.nodes_left;
                self.stats.nodes_visited += nodes;
                match found {
                    Some(model) => Ok(model),
                    None if self.engine.nodes_left == 0 => Err(SolveError::ResourceLimit),
                    None => Err(SolveError::Unsat),
                }
            };
            // The hypothesis's narrowings (and whatever the winning
            // search branch left behind) unwind with the trail; the
            // engine's classified-list appendices with the truncation.
            self.engine.tstats.undone_ops += self.store.undo_to(tm);
            self.engine.truncate_to(mark);
            self.engine.truncate_vars(nvars);
            return self.record(result);
        }
        let mut scratch = self.engine.clone_store(&self.store);
        let asserted = if let Some(plan) = prepared {
            self.engine.apply_norm(plan, &mut scratch).is_ok()
        } else {
            match plan_id {
                Some(id) => {
                    let plan = self.norm_plans.get(&id).expect("plan just cached");
                    self.engine.apply_norm(plan, &mut scratch).is_ok()
                }
                None => self.engine.assert_into(c, &mut scratch).is_ok(),
            }
        };
        let result = if !asserted
            || !self.engine.check_distinct_consistency()
            || !self.engine.propagate_new(&mut scratch, first_new)
        {
            self.engine.recycle_store(scratch);
            Err(SolveError::Unsat)
        } else {
            self.engine.nodes_left = self.limits.max_nodes;
            let found = self.engine.search_incremental(scratch);
            let nodes = self.limits.max_nodes - self.engine.nodes_left;
            self.stats.nodes_visited += nodes;
            match found {
                Some(model) => Ok(model),
                None if self.engine.nodes_left == 0 => Err(SolveError::ResourceLimit),
                None => Err(SolveError::Unsat),
            }
        };
        // Both the assert's classifications and the search's
        // Or-disjunct appendices vanish with one truncation.
        self.engine.truncate_to(mark);
        self.engine.truncate_vars(nvars);
        self.record(result)
    }

    /// The current scope state as a one-shot [`Problem`] (for
    /// equivalence checks and model validation).
    pub fn problem(&self) -> Problem {
        let mut p = Problem::new();
        for spec in &self.specs {
            p.new_var(*spec);
        }
        for c in &self.constraints {
            p.assert(c.clone());
        }
        p
    }

    fn record(&mut self, result: Result<Model, SolveError>) -> Result<Model, SolveError> {
        match &result {
            Ok(m) => {
                self.stats.sat += 1;
                // The cached model only ever feeds the reuse path; skip
                // the per-solve clone when that path is off, and reuse
                // the previous cache's allocations when it is on (a
                // probe sweep records thousands of models here).
                if self.reuse_models {
                    match &mut self.last_model {
                        Some(slot) => {
                            self.engine.tstats.pool_hits += 1;
                            slot.clone_from(m);
                        }
                        None => {
                            let mut slot = self.pooled_model_slot();
                            slot.clone_from(m);
                            self.last_model = Some(slot);
                        }
                    }
                }
            }
            Err(SolveError::Unsat) => self.stats.unsat += 1,
            Err(_) => {}
        }
        result
    }

    /// A retired model from the recycle pool, or a fresh one — counted
    /// as a pool hit/miss either way.
    fn pooled_model_slot(&mut self) -> Model {
        match self.model_pool.pop() {
            Some(m) => {
                self.engine.tstats.pool_hits += 1;
                m
            }
            None => {
                self.engine.tstats.pool_misses += 1;
                Model::default()
            }
        }
    }

    /// A copy of the cached model drawn from the recycle pool
    /// (`clone_from` reuses the retired model's buffer, so a warm
    /// reuse hit allocates nothing).
    fn pooled_copy_of_last(&mut self) -> Model {
        let mut out = self.pooled_model_slot();
        let m = self.last_model.as_ref().expect("reuse hit was checked");
        out.clone_from(m);
        out
    }

    fn ensure_synced(&mut self) {
        for i in self.engine.var_count()..self.specs.len() {
            self.engine.add_var(&self.specs[i], &mut self.store);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{CmpOp, Kind, LinExpr};
    use crate::solve;

    fn le(v: VarId, c: i64) -> Constraint {
        Constraint::Int(CmpOp::Le, LinExpr::var(v), LinExpr::constant(c))
    }

    fn ge(v: VarId, c: i64) -> Constraint {
        Constraint::Int(CmpOp::Ge, LinExpr::var(v), LinExpr::constant(c))
    }

    #[test]
    fn push_pop_restores_satisfiability() {
        let mut s = Session::new();
        let x = s.add_var(VarSpec::any());
        s.assert(ge(x, 10));
        assert!(s.solve().is_ok());
        s.push_assert(le(x, 5)); // contradiction
        assert_eq!(s.solve(), Err(SolveError::Unsat));
        s.pop();
        let m = s.solve().unwrap();
        assert!(m.int_value(x) >= 10);
    }

    #[test]
    fn matches_scratch_solver_on_each_scope() {
        let mut s = Session::new();
        let x = s.add_var(VarSpec::counter(100));
        let y = s.add_var(VarSpec::counter(100));
        let steps =
            [ge(x, 3), le(y, 40), Constraint::Int(CmpOp::Lt, LinExpr::var(x), LinExpr::var(y))];
        for c in steps {
            s.push_assert(c);
            let incremental = s.solve();
            let scratch = solve(&s.problem());
            assert_eq!(incremental, scratch);
        }
        for _ in 0..3 {
            s.pop();
            assert_eq!(s.solve(), solve(&s.problem()));
        }
    }

    #[test]
    fn objeq_forces_rebuild_and_pops_clean(){
        let mut s = Session::new();
        let a = s.add_var(VarSpec::any());
        let b = s.add_var(VarSpec::any());
        s.assert(Constraint::kind_is(a, Kind::Array));
        s.push_assert(Constraint::ObjEq(a, b));
        let m = s.solve().unwrap();
        assert!(m.same_object(a, b));
        assert_eq!(s.stats().rebuilds, 1, "aliasing rebuilds from scratch");
        s.push_assert(Constraint::kind_is(b, Kind::Float));
        assert_eq!(s.solve(), Err(SolveError::Unsat), "aliased kinds conflict");
        s.pop();
        s.pop();
        let m = s.solve().unwrap();
        assert!(!m.same_object(a, b));
        assert!(s.stats().propagation_reuse >= 1);
    }

    #[test]
    fn vars_survive_pop() {
        let mut s = Session::new();
        let x = s.add_var(VarSpec::counter(10));
        s.push();
        let y = s.add_var(VarSpec::counter(10));
        s.assert(ge(y, 2));
        assert!(s.solve().is_ok());
        s.pop();
        // y still exists; its scope constraint is gone.
        let m = s.solve().unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.int_value(y), 0);
        let _ = x;
    }

    #[test]
    fn precision_gate_is_scoped() {
        let mut s = Session::new();
        let x = s.add_var(VarSpec::any());
        s.push_assert(Constraint::Int(
            CmpOp::Lt,
            LinExpr::var(x),
            LinExpr::constant(1 << 60),
        ));
        assert_eq!(s.solve(), Err(SolveError::PrecisionExceeded));
        s.pop();
        assert!(s.solve().is_ok());
    }

    #[test]
    fn model_reuse_is_opt_in_and_validates() {
        let mut s = Session::new();
        let x = s.add_var(VarSpec::counter(100));
        s.set_reuse_models(true);
        s.assert(ge(x, 5));
        let m1 = s.solve().unwrap();
        // A weaker extra constraint the model already satisfies.
        s.push_assert(ge(x, 1));
        let m2 = s.solve().unwrap();
        assert_eq!(m1, m2);
        assert_eq!(s.stats().model_reuse, 1);
        // A constraint the cached model violates forces a real solve.
        s.push_assert(le(x, 2));
        assert_eq!(s.solve(), Err(SolveError::Unsat));
    }

    #[test]
    fn stats_track_reuse_and_depth() {
        let mut s = Session::new();
        let x = s.add_var(VarSpec::counter(100));
        s.assert(ge(x, 1));
        s.solve().unwrap();
        s.push_assert(ge(x, 2));
        s.push_assert(ge(x, 3));
        s.solve().unwrap();
        let st = s.stats();
        assert_eq!(st.solves, 2);
        assert_eq!(st.sat, 2);
        assert_eq!(st.propagation_reuse, 2);
        assert_eq!(st.rebuilds, 0);
        assert_eq!(st.pushes, 2);
        assert_eq!(st.max_depth, 2);
        assert!(st.nodes_visited >= 2);
    }

    /// Builds a pair of identically-configured sessions with a shared
    /// prefix, runs one hypothesis through `push_assert/solve/pop` on
    /// the first and through `solve_under` on the second, and asserts
    /// the results, the accumulated stats, and a follow-up solve all
    /// match exactly.
    fn assert_solve_under_equivalent(
        hash_cons: bool,
        reuse_models: bool,
        prefix: &[Constraint],
        hypotheses: &[Constraint],
    ) {
        let build = |hc: bool, rm: bool| {
            let mut s = Session::new();
            s.set_hash_cons(hc);
            s.set_reuse_models(rm);
            let _ = s.add_var(VarSpec::counter(100));
            let _ = s.add_var(VarSpec::any());
            let _ = s.add_var(VarSpec::any());
            s.push();
            for c in prefix {
                s.assert(c.clone());
            }
            s
        };
        let mut quad = build(hash_cons, reuse_models);
        let mut batched = build(hash_cons, reuse_models);
        for h in hypotheses {
            quad.push_assert(h.clone());
            let expected = quad.solve();
            quad.pop();
            let got = batched.solve_under(h);
            assert_eq!(expected, got, "hc={hash_cons} rm={reuse_models} {h:?}");
            assert_eq!(
                quad.stats(),
                batched.stats(),
                "stats diverged: hc={hash_cons} rm={reuse_models} {h:?}"
            );
        }
        // The sessions must be left in indistinguishable states.
        assert_eq!(quad.solve(), batched.solve());
        quad.pop();
        batched.pop();
        assert_eq!(quad.solve(), batched.solve());
    }

    #[test]
    fn solve_under_matches_push_assert_solve_pop() {
        let mut s = Session::new();
        let x = s.add_var(VarSpec::counter(100));
        let y = s.add_var(VarSpec::any());
        drop(s);
        let prefix = [ge(x, 5), Constraint::kind_is(y, Kind::Array)];
        let hypotheses = [
            ge(x, 10),
            le(x, 2), // unsat against the prefix
            Constraint::kind_is(y, Kind::Float), // structural conflict
            Constraint::kind_is(y, Kind::Array), // redundant
            Constraint::ObjEq(x, y), // forces the rebuild path
            Constraint::Int(CmpOp::Lt, LinExpr::var(x), LinExpr::constant(1 << 60)), // wide
            ge(x, 7),
        ];
        for hash_cons in [false, true] {
            for reuse_models in [false, true] {
                assert_solve_under_equivalent(hash_cons, reuse_models, &prefix, &hypotheses);
            }
        }
    }

    #[test]
    fn solve_under_under_dirty_scope_rebuilds_identically() {
        // VarIds 1 and 2 are the `any()` variables of the shared
        // builder in `assert_solve_under_equivalent`.
        let (a, b) = (VarId(1), VarId(2));
        // An ObjEq in the prefix leaves the session dirty; every
        // hypothesis must rebuild exactly like the quadruple.
        let prefix = [Constraint::ObjEq(a, b), Constraint::kind_is(a, Kind::Array)];
        let hypotheses = [
            Constraint::kind_is(b, Kind::Array),
            Constraint::kind_is(b, Kind::Float), // unsat: aliased kinds
        ];
        for reuse_models in [false, true] {
            assert_solve_under_equivalent(false, reuse_models, &prefix, &hypotheses);
        }
    }

    #[test]
    fn conflict_detected_at_assert_time() {
        let mut s = Session::new();
        let v = s.add_var(VarSpec::any());
        s.assert(Constraint::kind_is(v, Kind::Float));
        s.push_assert(Constraint::kind_is(v, Kind::SmallInt));
        assert_eq!(s.solve(), Err(SolveError::Unsat));
        // The conflicting scope consumed no search nodes.
        assert_eq!(s.stats().nodes_visited, 0);
        s.pop();
        assert_eq!(s.solve().unwrap().kind(v), Kind::Float);
    }
}
