//! The constraint language: variables, kinds, linear expressions and
//! constraint atoms.

/// Identifies a variable within one [`Problem`](crate::Problem).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

impl VarId {
    /// Index into the problem's variable tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Runtime kinds a VM value can have, as seen by the semantic
/// constraint model. One kind per well-known class, plus `SmallInt`
/// for tagged integers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Kind {
    SmallInt = 0,
    Float = 1,
    Array = 2,
    ByteArray = 3,
    String = 4,
    Symbol = 5,
    Object = 6,
    CompiledMethod = 7,
    ExternalAddress = 8,
    WordArray = 9,
    Context = 10,
    Nil = 11,
    True = 12,
    False = 13,
    Association = 14,
}

impl Kind {
    /// All kinds, in bit order.
    pub const ALL: [Kind; 15] = [
        Kind::SmallInt,
        Kind::Float,
        Kind::Array,
        Kind::ByteArray,
        Kind::String,
        Kind::Symbol,
        Kind::Object,
        Kind::CompiledMethod,
        Kind::ExternalAddress,
        Kind::WordArray,
        Kind::Context,
        Kind::Nil,
        Kind::True,
        Kind::False,
        Kind::Association,
    ];

    fn bit(self) -> u16 {
        1u16 << (self as u8)
    }
}

/// A set of kinds, the domain of a variable's kind attribute.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct KindSet(u16);

const ALL_KINDS_MASK: u16 = (1 << 15) - 1;

impl KindSet {
    /// The empty set (an unsatisfiable domain).
    pub const EMPTY: KindSet = KindSet(0);
    /// Every kind.
    pub const ANY: KindSet = KindSet(ALL_KINDS_MASK);

    /// A singleton set.
    pub fn only(kind: Kind) -> KindSet {
        KindSet(kind.bit())
    }

    /// Builds a set from several kinds.
    pub fn of(kinds: &[Kind]) -> KindSet {
        KindSet(kinds.iter().fold(0, |m, k| m | k.bit()))
    }

    /// Set complement (the negation of a kind test).
    pub fn complement(self) -> KindSet {
        KindSet(!self.0 & ALL_KINDS_MASK)
    }

    /// Set intersection (constraint conjunction).
    pub fn intersect(self, other: KindSet) -> KindSet {
        KindSet(self.0 & other.0)
    }

    /// Set union.
    pub fn union(self, other: KindSet) -> KindSet {
        KindSet(self.0 | other.0)
    }

    /// Membership test.
    pub fn contains(self, kind: Kind) -> bool {
        self.0 & kind.bit() != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of kinds in the set.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterates the kinds in the set in bit order.
    pub fn iter(self) -> impl Iterator<Item = Kind> {
        Kind::ALL.into_iter().filter(move |k| self.contains(*k))
    }

    /// The lowest-numbered kind in the set, if any. The solver uses
    /// this as the default pick, which makes `SmallInt` the preferred
    /// kind for unconstrained variables.
    pub fn first(self) -> Option<Kind> {
        self.iter().next()
    }
}

impl std::fmt::Debug for KindSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// A linear expression `c + Σ coeff·var` over the integer attributes
/// of variables.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct LinExpr {
    /// Constant term.
    pub constant: i64,
    /// Coefficient/variable pairs; variables appear at most once.
    pub terms: Vec<(i64, VarId)>,
}

impl LinExpr {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> LinExpr {
        LinExpr { constant: c, terms: Vec::new() }
    }

    /// The expression `1·v`.
    pub fn var(v: VarId) -> LinExpr {
        LinExpr { constant: 0, terms: vec![(1, v)] }
    }

    /// The expression `coeff·v`.
    pub fn scaled_var(coeff: i64, v: VarId) -> LinExpr {
        LinExpr { constant: 0, terms: vec![(coeff, v)] }
    }

    /// Sum of two expressions.
    pub fn plus(&self, other: &LinExpr) -> LinExpr {
        let mut r = self.clone();
        r.constant += other.constant;
        for &(c, v) in &other.terms {
            r.add_term(c, v);
        }
        r
    }

    /// Difference of two expressions.
    pub fn minus(&self, other: &LinExpr) -> LinExpr {
        self.plus(&other.negated())
    }

    /// Negation.
    pub fn negated(&self) -> LinExpr {
        LinExpr {
            constant: -self.constant,
            terms: self.terms.iter().map(|&(c, v)| (-c, v)).collect(),
        }
    }

    /// Adds `offset` to the constant term.
    pub fn offset(&self, offset: i64) -> LinExpr {
        let mut r = self.clone();
        r.constant += offset;
        r
    }

    fn add_term(&mut self, coeff: i64, var: VarId) {
        if let Some(t) = self.terms.iter_mut().find(|t| t.1 == var) {
            t.0 += coeff;
        } else {
            self.terms.push((coeff, var));
        }
        self.terms.retain(|t| t.0 != 0);
    }

    /// All variables mentioned with non-zero coefficient.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.terms.iter().map(|t| t.1)
    }

    /// Evaluates the expression under an assignment function.
    pub fn eval(&self, value_of: impl Fn(VarId) -> i64) -> i64 {
        self.terms
            .iter()
            .fold(self.constant, |acc, &(c, v)| acc + c * value_of(v))
    }
}

/// Comparison operators for integer and float constraints.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    /// Logical negation of the comparison.
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }

    /// Applies the comparison to two `i64`s.
    pub fn holds_int(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }

    /// Applies the comparison to two `f64`s.
    pub fn holds_float(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

/// A float-valued term: a variable's float attribute or a constant.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum FloatTerm {
    /// The float attribute of a variable.
    Var(VarId),
    /// A float constant.
    Const(f64),
}

/// A constraint atom (or a conjunction/disjunction of atoms).
#[derive(Clone, PartialEq, Debug)]
pub enum Constraint {
    /// The variable's kind lies in the given set.
    Kind {
        /// Constrained variable.
        var: VarId,
        /// Allowed kinds.
        allowed: KindSet,
    },
    /// `lhs op rhs` over integer attributes.
    Int(CmpOp, LinExpr, LinExpr),
    /// `lhs op rhs` over float attributes.
    Float(CmpOp, FloatTerm, FloatTerm),
    /// Two object variables denote the same object.
    ObjEq(VarId, VarId),
    /// Two object variables denote distinct objects.
    ObjNe(VarId, VarId),
    /// At least one branch holds.
    Or(Vec<Constraint>),
    /// Every branch holds.
    And(Vec<Constraint>),
}

impl Constraint {
    /// `var` has exactly the given kind.
    pub fn kind_is(var: VarId, kind: Kind) -> Constraint {
        Constraint::Kind { var, allowed: KindSet::only(kind) }
    }

    /// `var` has any kind but the given one.
    pub fn kind_is_not(var: VarId, kind: Kind) -> Constraint {
        Constraint::Kind { var, allowed: KindSet::only(kind).complement() }
    }

    /// `expr` lies in the tagged SmallInteger range.
    pub fn in_small_int_range(expr: LinExpr) -> Constraint {
        Constraint::And(vec![
            Constraint::Int(CmpOp::Ge, expr.clone(), LinExpr::constant(crate::SMALL_INT_MIN)),
            Constraint::Int(CmpOp::Le, expr, LinExpr::constant(crate::SMALL_INT_MAX)),
        ])
    }

    /// `expr` lies outside the tagged SmallInteger range (the overflow
    /// branch of inlined arithmetic).
    pub fn not_in_small_int_range(expr: LinExpr) -> Constraint {
        Constraint::Or(vec![
            Constraint::Int(CmpOp::Lt, expr.clone(), LinExpr::constant(crate::SMALL_INT_MIN)),
            Constraint::Int(CmpOp::Gt, expr, LinExpr::constant(crate::SMALL_INT_MAX)),
        ])
    }

    /// Logical negation, used by the explorer's path negation step.
    pub fn negated(&self) -> Constraint {
        match self {
            Constraint::Kind { var, allowed } => {
                Constraint::Kind { var: *var, allowed: allowed.complement() }
            }
            Constraint::Int(op, l, r) => Constraint::Int(op.negated(), l.clone(), r.clone()),
            Constraint::Float(op, l, r) => Constraint::Float(op.negated(), *l, *r),
            Constraint::ObjEq(a, b) => Constraint::ObjNe(*a, *b),
            Constraint::ObjNe(a, b) => Constraint::ObjEq(*a, *b),
            Constraint::Or(cs) => Constraint::And(cs.iter().map(|c| c.negated()).collect()),
            Constraint::And(cs) => Constraint::Or(cs.iter().map(|c| c.negated()).collect()),
        }
    }

    /// All variables mentioned by the constraint.
    pub fn vars(&self, out: &mut Vec<VarId>) {
        match self {
            Constraint::Kind { var, .. } => out.push(*var),
            Constraint::Int(_, l, r) => {
                out.extend(l.vars());
                out.extend(r.vars());
            }
            Constraint::Float(_, l, r) => {
                for t in [l, r] {
                    if let FloatTerm::Var(v) = t {
                        out.push(*v);
                    }
                }
            }
            Constraint::ObjEq(a, b) | Constraint::ObjNe(a, b) => {
                out.push(*a);
                out.push(*b);
            }
            Constraint::Or(cs) | Constraint::And(cs) => {
                for c in cs {
                    c.vars(out);
                }
            }
        }
    }

    /// Largest absolute integer constant mentioned (precision gate).
    pub fn max_abs_constant(&self) -> i64 {
        match self {
            Constraint::Kind { .. } | Constraint::Float(..) | Constraint::ObjEq(..)
            | Constraint::ObjNe(..) => 0,
            Constraint::Int(_, l, r) => {
                let m = |e: &LinExpr| {
                    e.terms
                        .iter()
                        .map(|t| t.0.saturating_abs())
                        .chain(std::iter::once(e.constant.saturating_abs()))
                        .max()
                        .unwrap_or(0)
                };
                m(l).max(m(r))
            }
            Constraint::Or(cs) | Constraint::And(cs) => {
                cs.iter().map(|c| c.max_abs_constant()).max().unwrap_or(0)
            }
        }
    }
}

/// Initial domain of a fresh variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VarSpec {
    /// Allowed kinds.
    pub kinds: KindSet,
    /// Inclusive bounds on the integer attribute.
    pub int_bounds: (i64, i64),
}

impl VarSpec {
    /// Unconstrained: any kind, SmallInteger-range integer attribute.
    pub fn any() -> VarSpec {
        VarSpec {
            kinds: KindSet::ANY,
            int_bounds: (crate::SMALL_INT_MIN, crate::SMALL_INT_MAX),
        }
    }

    /// A pure counter (stack size, slot count): kind fixed to
    /// SmallInt, value in `[0, max]`.
    pub fn counter(max: i64) -> VarSpec {
        VarSpec { kinds: KindSet::only(Kind::SmallInt), int_bounds: (0, max) }
    }

    /// An integer-valued variable within the given bounds.
    pub fn int_in(lo: i64, hi: i64) -> VarSpec {
        VarSpec { kinds: KindSet::only(Kind::SmallInt), int_bounds: (lo, hi) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_set_algebra() {
        let s = KindSet::of(&[Kind::SmallInt, Kind::Float]);
        assert!(s.contains(Kind::SmallInt));
        assert!(!s.contains(Kind::Array));
        assert_eq!(s.len(), 2);
        let c = s.complement();
        assert!(!c.contains(Kind::SmallInt));
        assert!(c.contains(Kind::Array));
        assert_eq!(s.intersect(c), KindSet::EMPTY);
        assert_eq!(s.union(c), KindSet::ANY);
        assert_eq!(KindSet::ANY.complement(), KindSet::EMPTY);
    }

    #[test]
    fn kind_set_first_prefers_small_int() {
        assert_eq!(KindSet::ANY.first(), Some(Kind::SmallInt));
        assert_eq!(KindSet::only(Kind::Float).first(), Some(Kind::Float));
        assert_eq!(KindSet::EMPTY.first(), None);
    }

    #[test]
    fn lin_expr_combines_terms() {
        let x = VarId(0);
        let y = VarId(1);
        let e = LinExpr::var(x).plus(&LinExpr::var(y)).plus(&LinExpr::var(x));
        assert_eq!(e.terms, vec![(2, x), (1, y)]);
        let z = e.minus(&LinExpr::scaled_var(2, x));
        assert_eq!(z.terms, vec![(1, y)]);
        assert_eq!(z.eval(|v| if v == y { 7 } else { 0 }), 7);
    }

    #[test]
    fn cmp_negation_is_involutive() {
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne] {
            assert_eq!(op.negated().negated(), op);
            // a op b XOR a negated(op) b
            assert_ne!(op.holds_int(3, 5), op.negated().holds_int(3, 5));
        }
    }

    #[test]
    fn constraint_negation_de_morgan() {
        let x = VarId(0);
        let c = Constraint::not_in_small_int_range(LinExpr::var(x));
        let n = c.negated();
        match n {
            Constraint::And(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn max_abs_constant_finds_big_numbers() {
        let x = VarId(0);
        let c = Constraint::Int(
            CmpOp::Lt,
            LinExpr::var(x),
            LinExpr::constant(1 << 60),
        );
        assert!(c.max_abs_constant() >= 1 << 60);
    }
}
