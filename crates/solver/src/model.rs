//! Solver models: one concrete assignment per variable.

use crate::constraint::{Kind, VarId};

/// The concrete attributes assigned to one variable.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Assignment {
    /// The chosen kind.
    pub kind: Kind,
    /// Integer attribute (the value for SmallInts, meaningful for
    /// counters and size variables regardless of kind).
    pub int: i64,
    /// Float attribute (the payload when `kind == Float`).
    pub float: f64,
    /// Identity class: variables with equal `alias` denote the same
    /// object (driven by `ObjEq` constraints).
    pub alias: u32,
}

/// A satisfying assignment for a [`Problem`](crate::Problem).
#[derive(PartialEq, Debug, Default)]
pub struct Model {
    assignments: Vec<Assignment>,
}

impl Clone for Model {
    fn clone(&self) -> Model {
        Model { assignments: self.assignments.clone() }
    }

    /// Reuses the destination's buffer (`Assignment` is `Copy`), so
    /// per-solve model caching does not allocate once warm.
    fn clone_from(&mut self, source: &Model) {
        self.assignments.clone_from(&source.assignments);
    }
}

impl Model {
    pub(crate) fn new(assignments: Vec<Assignment>) -> Model {
        Model { assignments }
    }

    /// Surrenders the assignment buffer for pooling (the
    /// `Engine::recycle_model` path).
    pub(crate) fn into_assignments(self) -> Vec<Assignment> {
        self.assignments
    }

    /// Builds a model from explicit assignments (`VarId(0)` first).
    ///
    /// The solver never needs this — it exists so harnesses can
    /// construct adversarial witnesses (e.g. out-of-range integers)
    /// and test how downstream consumers degrade.
    pub fn from_assignments(assignments: Vec<Assignment>) -> Model {
        Model { assignments }
    }

    /// The full assignment of `var`. Variables created *after* the
    /// solve (lazy frame growth) get a default assignment: kind
    /// SmallInt, value 0, unaliased.
    pub fn assignment(&self, var: VarId) -> Assignment {
        self.assignments.get(var.index()).copied().unwrap_or(Assignment {
            kind: Kind::SmallInt,
            int: 0,
            float: 1.5,
            alias: u32::MAX - var.0,
        })
    }

    /// The kind chosen for `var`.
    pub fn kind(&self, var: VarId) -> Kind {
        self.assignment(var).kind
    }

    /// The integer attribute of `var`.
    pub fn int_value(&self, var: VarId) -> i64 {
        self.assignment(var).int
    }

    /// The float attribute of `var`.
    pub fn float_value(&self, var: VarId) -> f64 {
        self.assignment(var).float
    }

    /// Whether two variables were aliased to the same object identity.
    pub fn same_object(&self, a: VarId, b: VarId) -> bool {
        self.assignment(a).alias == self.assignment(b).alias
    }

    /// Number of variables in the model.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether the model is empty.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }
}
