//! Property tests of the incremental layer's determinism contract:
//! a `Session` driven by arbitrary push/assert/pop sequences must
//! answer exactly what the from-scratch `solve()` answers for the same
//! in-scope constraints — same SAT/UNSAT/error, and (because the
//! campaign's reproducibility depends on it) the *same model*.

use igjit_solver::{
    check_model, solve, CmpOp, Constraint, Kind, LinExpr, Session, SolveError, VarId, VarSpec,
};
use proptest::prelude::*;

const NVARS: usize = 4;

/// A generator for random constraints over NVARS variables (the same
/// shape as the soundness suite, including `ObjEq` — which exercises
/// the session's rebuild-on-aliasing path).
fn arb_constraint() -> impl Strategy<Value = Constraint> {
    let var = (0u32..NVARS as u32).prop_map(VarId);
    let kind = prop_oneof![
        Just(Kind::SmallInt),
        Just(Kind::Float),
        Just(Kind::Array),
        Just(Kind::Nil),
    ];
    let cmp = prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ];
    let lin = (var.clone(), -50i64..50)
        .prop_map(|(v, c)| LinExpr::var(v).offset(c));
    let lin2 = (var.clone(), var.clone(), -50i64..50)
        .prop_map(|(a, b, c)| LinExpr::var(a).plus(&LinExpr::var(b)).offset(c));
    prop_oneof![
        (var.clone(), kind.clone()).prop_map(|(v, k)| Constraint::kind_is(v, k)),
        (var.clone(), kind).prop_map(|(v, k)| Constraint::kind_is_not(v, k)),
        (cmp.clone(), lin.clone(), lin.clone()).prop_map(|(op, l, r)| Constraint::Int(op, l, r)),
        (cmp, lin2.clone(), -100i64..100)
            .prop_map(|(op, l, c)| Constraint::Int(op, l, LinExpr::constant(c))),
        (var.clone(), var.clone()).prop_map(|(a, b)| Constraint::ObjEq(a, b)),
        (var.clone(), var).prop_map(|(a, b)| Constraint::ObjNe(a, b)),
        (lin2).prop_map(Constraint::not_in_small_int_range),
    ]
}

/// One step of a random session script.
#[derive(Clone, Debug)]
enum Step {
    PushAssert(Constraint),
    Assert(Constraint),
    Pop,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        arb_constraint().prop_map(Step::PushAssert),
        arb_constraint().prop_map(Step::Assert),
        Just(Step::Pop),
        Just(Step::Pop),
    ]
}

/// Asserts that one session solve agrees with the scratch solver on
/// the session's current in-scope problem.
fn assert_agrees(s: &mut Session) {
    let problem = s.problem();
    let incremental = s.solve();
    let scratch = solve(&problem);
    prop_assert_eq!(
        &incremental,
        &scratch,
        "incremental and scratch answers diverge on {:?}",
        problem.constraints()
    );
    if let Ok(model) = &incremental {
        prop_assert!(
            check_model(&problem, model),
            "session model violates in-scope constraints {:?}",
            problem.constraints()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Pushing constraints one scope at a time, then popping all the
    /// way back, agrees with from-scratch solving at every depth.
    #[test]
    fn prop_session_agrees_with_scratch_down_and_up(
        constraints in proptest::collection::vec(arb_constraint(), 1..8)
    ) {
        let mut s = Session::new();
        for _ in 0..NVARS {
            s.add_var(VarSpec::any());
        }
        for c in &constraints {
            s.push_assert(c.clone());
            assert_agrees(&mut s);
        }
        for _ in 0..constraints.len() {
            s.pop();
            assert_agrees(&mut s);
        }
        prop_assert_eq!(s.depth(), 0);
    }

    /// Arbitrary interleavings of push/assert/pop keep the session in
    /// lockstep with the scratch solver.
    #[test]
    fn prop_session_agrees_under_arbitrary_scripts(
        steps in proptest::collection::vec(arb_step(), 1..12)
    ) {
        let mut s = Session::new();
        for _ in 0..NVARS {
            s.add_var(VarSpec::any());
        }
        for step in steps {
            match step {
                Step::PushAssert(c) => s.push_assert(c),
                Step::Assert(c) => s.assert(c),
                Step::Pop => {
                    if s.depth() == 0 {
                        continue;
                    }
                    s.pop();
                }
            }
            assert_agrees(&mut s);
        }
    }

    /// The tree walk the explorer performs: solve a prefix, then for
    /// each suffix position push the negation of one step, solve, and
    /// pop — the session must match scratch at every node.
    #[test]
    fn prop_negation_walk_matches_scratch(
        path in proptest::collection::vec(arb_constraint(), 1..6)
    ) {
        let mut s = Session::new();
        for _ in 0..NVARS {
            s.add_var(VarSpec::any());
        }
        for c in &path {
            s.push_assert(c.clone());
        }
        assert_agrees(&mut s);
        for i in (0..path.len()).rev() {
            s.pop();
            s.push_assert(path[i].negated());
            assert_agrees(&mut s);
            s.pop();
            s.push_assert(path[i].clone());
        }
    }

    /// Variables added mid-session (the explorer's lazily growing
    /// frame) behave as if they had existed from the start.
    #[test]
    fn prop_late_variables_match_scratch(
        before in proptest::collection::vec(arb_constraint(), 0..4),
        after in proptest::collection::vec(arb_constraint(), 1..4)
    ) {
        let mut s = Session::new();
        for _ in 0..2 {
            s.add_var(VarSpec::any());
        }
        for c in &before {
            // Project early constraints onto the first two variables.
            let mut vs = Vec::new();
            c.vars(&mut vs);
            if vs.iter().all(|v| v.0 < 2) {
                s.push_assert(c.clone());
            }
        }
        for _ in 2..NVARS {
            s.add_var(VarSpec::any());
        }
        for c in &after {
            s.push_assert(c.clone());
            assert_agrees(&mut s);
        }
    }
}

/// Unsatisfiable prefixes stay unsatisfiable in deeper scopes (a
/// deterministic spot check of conflict propagation).
#[test]
fn unsat_prefix_poisons_descendants() {
    let mut s = Session::new();
    let x = s.add_var(VarSpec::any());
    s.push_assert(Constraint::Int(CmpOp::Lt, LinExpr::var(x), LinExpr::constant(0)));
    s.push_assert(Constraint::Int(CmpOp::Gt, LinExpr::var(x), LinExpr::constant(0)));
    assert_eq!(s.solve(), Err(SolveError::Unsat));
    s.push_assert(Constraint::kind_is(x, Kind::SmallInt));
    assert_eq!(s.solve(), Err(SolveError::Unsat));
    s.pop();
    s.pop();
    s.pop();
    assert!(s.solve().is_ok());
}
