//! Property tests of the hash-consing layer's invisibility: a
//! `Session` with `set_hash_cons(true)` must answer every solve with
//! the **exact** model the plain session produces, and must visit the
//! same number of search nodes — interning changes how fast a
//! constraint is classified, never what the engine does with it.

use igjit_solver::{CmpOp, Constraint, Kind, LinExpr, Session, VarId, VarSpec};
use proptest::prelude::*;

const NVARS: usize = 4;

/// The same constraint shapes the session-equivalence suite uses,
/// including `ObjEq` (the dirty-rebuild path) and the nested
/// `Or`/`And` pair of the SmallInteger range tests.
fn arb_constraint() -> impl Strategy<Value = Constraint> {
    let var = (0u32..NVARS as u32).prop_map(VarId);
    let kind = prop_oneof![
        Just(Kind::SmallInt),
        Just(Kind::Float),
        Just(Kind::Array),
        Just(Kind::Nil),
    ];
    let cmp = prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ];
    let lin = (var.clone(), -50i64..50).prop_map(|(v, c)| LinExpr::var(v).offset(c));
    let lin2 = (var.clone(), var.clone(), -50i64..50)
        .prop_map(|(a, b, c)| LinExpr::var(a).plus(&LinExpr::var(b)).offset(c));
    prop_oneof![
        (var.clone(), kind.clone()).prop_map(|(v, k)| Constraint::kind_is(v, k)),
        (var.clone(), kind).prop_map(|(v, k)| Constraint::kind_is_not(v, k)),
        (cmp.clone(), lin.clone(), lin.clone()).prop_map(|(op, l, r)| Constraint::Int(op, l, r)),
        (cmp, lin2.clone(), -100i64..100)
            .prop_map(|(op, l, c)| Constraint::Int(op, l, LinExpr::constant(c))),
        (var.clone(), var.clone()).prop_map(|(a, b)| Constraint::ObjEq(a, b)),
        (var.clone(), var).prop_map(|(a, b)| Constraint::ObjNe(a, b)),
        (lin2.clone()).prop_map(Constraint::not_in_small_int_range),
        (lin2).prop_map(Constraint::in_small_int_range),
    ]
}

/// One step of a random session script.
#[derive(Clone, Debug)]
enum Step {
    PushAssert(Constraint),
    Assert(Constraint),
    Pop,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        arb_constraint().prop_map(Step::PushAssert),
        arb_constraint().prop_map(Step::Assert),
        Just(Step::Pop),
    ]
}

fn fresh_pair() -> (Session, Session) {
    let mut plain = Session::new();
    let mut consed = Session::new();
    consed.set_hash_cons(true);
    for _ in 0..NVARS {
        plain.add_var(VarSpec::any());
        consed.add_var(VarSpec::any());
    }
    (plain, consed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Driving both sessions through the same arbitrary script keeps
    /// them in lockstep: identical answers (models included) at every
    /// step, and identical work counters at the end.
    #[test]
    fn prop_hash_cons_is_invisible(
        steps in proptest::collection::vec(arb_step(), 1..14)
    ) {
        let (mut plain, mut consed) = fresh_pair();
        for step in steps {
            match step {
                Step::PushAssert(c) => {
                    plain.push_assert(c.clone());
                    consed.push_assert(c);
                }
                Step::Assert(c) => {
                    plain.assert(c.clone());
                    consed.assert(c);
                }
                Step::Pop => {
                    if plain.depth() == 0 {
                        continue;
                    }
                    plain.pop();
                    consed.pop();
                }
            }
            prop_assert_eq!(plain.solve(), consed.solve());
        }
        let (ps, cs) = (plain.stats(), consed.stats());
        prop_assert_eq!(ps.nodes_visited, cs.nodes_visited, "node counts diverge");
        prop_assert_eq!(ps.sat, cs.sat);
        prop_assert_eq!(ps.unsat, cs.unsat);
        prop_assert_eq!(ps.propagation_reuse, cs.propagation_reuse);
        prop_assert_eq!(ps.rebuilds, cs.rebuilds);
    }

    /// The explorer's negation walk — shared prefix, one negated step
    /// per child — re-asserts the same atoms constantly; the interned
    /// session must still match model-for-model.
    #[test]
    fn prop_negation_walk_is_invisible(
        path in proptest::collection::vec(arb_constraint(), 1..6)
    ) {
        let (mut plain, mut consed) = fresh_pair();
        for c in &path {
            plain.push_assert(c.clone());
            consed.push_assert(c.clone());
        }
        prop_assert_eq!(plain.solve(), consed.solve());
        for i in (0..path.len()).rev() {
            plain.pop();
            consed.pop();
            plain.push_assert(path[i].negated());
            consed.push_assert(path[i].negated());
            prop_assert_eq!(plain.solve(), consed.solve());
            plain.pop();
            consed.pop();
            plain.push_assert(path[i].clone());
            consed.push_assert(path[i].clone());
        }
        prop_assert_eq!(plain.stats().nodes_visited, consed.stats().nodes_visited);
    }
}
