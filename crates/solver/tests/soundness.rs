//! Property tests of the solver's soundness contract: whenever
//! `solve` answers a model, `check_model` must accept it — for
//! arbitrary randomly-generated constraint systems — and on tiny
//! domains an `Unsat` answer must agree with brute force.

use igjit_solver::{
    check_model, solve, solve_with_limits, CmpOp, Constraint, Kind, LinExpr, Problem,
    SearchLimits, SolveError, VarId, VarSpec,
};
use proptest::prelude::*;

const NVARS: usize = 4;

/// A generator for random constraints over NVARS variables.
fn arb_constraint() -> impl Strategy<Value = Constraint> {
    let var = (0u32..NVARS as u32).prop_map(VarId);
    let kind = prop_oneof![
        Just(Kind::SmallInt),
        Just(Kind::Float),
        Just(Kind::Array),
        Just(Kind::Nil),
    ];
    let cmp = prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ];
    let lin = (var.clone(), -50i64..50, -50i64..50)
        .prop_map(|(v, c, k)| LinExpr::scaled_var(k.signum(), v).offset(c));
    let lin2 = (var.clone(), var.clone(), -50i64..50).prop_map(|(a, b, c)| {
        LinExpr::var(a).plus(&LinExpr::var(b)).offset(c)
    });
    prop_oneof![
        (var.clone(), kind.clone()).prop_map(|(v, k)| Constraint::kind_is(v, k)),
        (var.clone(), kind).prop_map(|(v, k)| Constraint::kind_is_not(v, k)),
        (cmp.clone(), lin.clone(), lin.clone())
            .prop_map(|(op, l, r)| Constraint::Int(op, l, r)),
        (cmp, lin2.clone(), -100i64..100)
            .prop_map(|(op, l, c)| Constraint::Int(op, l, LinExpr::constant(c))),
        (var.clone(), var.clone()).prop_map(|(a, b)| Constraint::ObjEq(a, b)),
        (var.clone(), var).prop_map(|(a, b)| Constraint::ObjNe(a, b)),
        (lin2).prop_map(Constraint::not_in_small_int_range),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prop_models_satisfy_their_problems(
        constraints in proptest::collection::vec(arb_constraint(), 0..8)
    ) {
        let mut p = Problem::new();
        for _ in 0..NVARS {
            p.new_var(VarSpec::any());
        }
        for c in &constraints {
            p.assert(c.clone());
        }
        match solve(&p) {
            Ok(model) => prop_assert!(
                check_model(&p, &model),
                "solver returned a non-model for {constraints:?}"
            ),
            Err(SolveError::Unsat | SolveError::ResourceLimit) => {}
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    #[test]
    fn prop_negation_flips_satisfaction(
        constraints in proptest::collection::vec(arb_constraint(), 1..5)
    ) {
        // If a model satisfies C, it must violate C.negated().
        let mut p = Problem::new();
        for _ in 0..NVARS {
            p.new_var(VarSpec::any());
        }
        for c in &constraints {
            p.assert(c.clone());
        }
        if let Ok(model) = solve(&p) {
            for c in &constraints {
                let mut q = Problem::new();
                for _ in 0..NVARS {
                    q.new_var(VarSpec::any());
                }
                q.assert(c.negated());
                prop_assert!(
                    !check_model(&q, &model),
                    "model satisfies both {c:?} and its negation"
                );
            }
        }
    }

    #[test]
    fn prop_unsat_on_tiny_domains_agrees_with_brute_force(
        cs in proptest::collection::vec(
            ((0u32..2).prop_map(VarId),
             prop_oneof![Just(CmpOp::Lt), Just(CmpOp::Ge), Just(CmpOp::Eq)],
             -3i64..4),
            1..6
        )
    ) {
        // Two ints in [0,3]; pure comparisons against constants.
        let mut p = Problem::new();
        let _a = p.new_var(VarSpec::int_in(0, 3));
        let _b = p.new_var(VarSpec::int_in(0, 3));
        for (v, op, c) in &cs {
            p.assert(Constraint::Int(*op, LinExpr::var(*v), LinExpr::constant(*c)));
        }
        let brute_sat = (0..4).any(|x| {
            (0..4).any(|y| {
                cs.iter().all(|(v, op, c)| {
                    let val = if v.0 == 0 { x } else { y };
                    op.holds_int(val, *c)
                })
            })
        });
        match solve_with_limits(&p, SearchLimits { max_nodes: 100_000 }) {
            Ok(m) => {
                prop_assert!(brute_sat, "solver found a model where brute force found none");
                prop_assert!(check_model(&p, &m));
            }
            Err(SolveError::Unsat) => prop_assert!(
                !brute_sat,
                "solver said Unsat but brute force found a solution: {cs:?}"
            ),
            Err(e) => prop_assert!(false, "{e:?}"),
        }
    }
}

#[test]
fn check_model_rejects_wrong_assignments() {
    let mut p = Problem::new();
    let x = p.new_var(VarSpec::any());
    p.assert(Constraint::Int(CmpOp::Eq, LinExpr::var(x), LinExpr::constant(5)));
    let good = solve(&p).unwrap();
    assert!(check_model(&p, &good));
    // A model from a different problem does not satisfy this one.
    let mut q = Problem::new();
    let y = q.new_var(VarSpec::any());
    q.assert(Constraint::Int(CmpOp::Eq, LinExpr::var(y), LinExpr::constant(6)));
    let other = solve(&q).unwrap();
    assert!(!check_model(&p, &other));
}
