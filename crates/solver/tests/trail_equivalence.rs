//! Engine v10 equivalence: trail mode (scopes on the undo log, the
//! `IGJIT_SOLVER_TRAIL` default) must be observably identical to clone
//! mode (each scope copies the interval store — the engine-v3 baseline
//! semantics). Two sessions driven by the same random script must
//! return the same SAT/UNSAT/error verdicts, the *same model* (the
//! campaign's reproducibility depends on exact models, not just
//! satisfiability), and the same [`SessionStats`] — the trail is a
//! storage strategy, not a different solver, so even the node and
//! reuse counters must not move. Scripts include `ObjEq` (the
//! dirty-scope rebuild path, where trail marks are taken on a store
//! that is about to be rebuilt from scratch) and `solve_under` /
//! `solve_under_prepared` (the probe hot path the trail was built
//! for).

use igjit_solver::{
    CmpOp, Constraint, Kind, LinExpr, PreparedConstraint, Session, VarId, VarSpec,
};
use proptest::prelude::*;

const NVARS: usize = 4;

/// Same constraint shape as the session-equivalence suite, including
/// `ObjEq` so the aliasing rebuild path runs under both modes.
fn arb_constraint() -> impl Strategy<Value = Constraint> {
    let var = (0u32..NVARS as u32).prop_map(VarId);
    let kind = prop_oneof![
        Just(Kind::SmallInt),
        Just(Kind::Float),
        Just(Kind::Array),
        Just(Kind::Nil),
    ];
    let cmp = prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ];
    let lin = (var.clone(), -50i64..50)
        .prop_map(|(v, c)| LinExpr::var(v).offset(c));
    let lin2 = (var.clone(), var.clone(), -50i64..50)
        .prop_map(|(a, b, c)| LinExpr::var(a).plus(&LinExpr::var(b)).offset(c));
    prop_oneof![
        (var.clone(), kind.clone()).prop_map(|(v, k)| Constraint::kind_is(v, k)),
        (var.clone(), kind).prop_map(|(v, k)| Constraint::kind_is_not(v, k)),
        (cmp.clone(), lin.clone(), lin.clone()).prop_map(|(op, l, r)| Constraint::Int(op, l, r)),
        (cmp, lin2.clone(), -100i64..100)
            .prop_map(|(op, l, c)| Constraint::Int(op, l, LinExpr::constant(c))),
        (var.clone(), var.clone()).prop_map(|(a, b)| Constraint::ObjEq(a, b)),
        (var.clone(), var).prop_map(|(a, b)| Constraint::ObjNe(a, b)),
        (lin2).prop_map(Constraint::not_in_small_int_range),
    ]
}

/// One step of a random session script, mirrored onto both sessions.
#[derive(Clone, Debug)]
enum Step {
    PushAssert(Constraint),
    Assert(Constraint),
    Pop,
    Solve,
    SolveUnder(Constraint),
    SolveUnderPrepared(Constraint),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        arb_constraint().prop_map(Step::PushAssert),
        arb_constraint().prop_map(Step::Assert),
        Just(Step::Pop),
        Just(Step::Solve),
        arb_constraint().prop_map(Step::SolveUnder),
        arb_constraint().prop_map(Step::SolveUnderPrepared),
    ]
}

fn pair() -> (Session, Session) {
    let mut trail = Session::new();
    trail.set_trail(true);
    let mut clone = Session::new();
    clone.set_trail(false);
    for s in [&mut trail, &mut clone] {
        for _ in 0..NVARS {
            s.add_var(VarSpec::any());
        }
    }
    (trail, clone)
}

/// Both sessions answered; verdicts and models must match exactly.
macro_rules! assert_same_answer {
    ($a:expr, $b:expr, $ctx:expr) => {
        prop_assert_eq!(&$a, &$b, "trail and clone modes diverge on {:?}", $ctx)
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary interleavings of scope ops and all three solve entry
    /// points stay in lockstep: verdict, model, and stats.
    #[test]
    fn prop_trail_matches_clone_under_arbitrary_scripts(
        steps in proptest::collection::vec(arb_step(), 1..14)
    ) {
        let (mut t, mut c) = pair();
        for step in steps {
            match step {
                Step::PushAssert(con) => {
                    t.push_assert(con.clone());
                    c.push_assert(con);
                }
                Step::Assert(con) => {
                    t.assert(con.clone());
                    c.assert(con);
                }
                Step::Pop => {
                    if t.depth() == 0 {
                        continue;
                    }
                    t.pop();
                    c.pop();
                }
                Step::Solve => {
                    let (ra, rb) = (t.solve(), c.solve());
                    assert_same_answer!(ra, rb, t.constraints());
                }
                Step::SolveUnder(h) => {
                    let (ra, rb) = (t.solve_under(&h), c.solve_under(&h));
                    assert_same_answer!(ra, rb, &h);
                    t.clear_cached_model();
                    c.clear_cached_model();
                }
                Step::SolveUnderPrepared(h) => {
                    let p = PreparedConstraint::new(h.clone());
                    let (ra, rb) = (t.solve_under_prepared(&p), c.solve_under_prepared(&p));
                    assert_same_answer!(ra, rb, &h);
                    t.clear_cached_model();
                    c.clear_cached_model();
                }
            }
            prop_assert_eq!(t.depth(), c.depth());
        }
        // The trail is invisible in the session counters: same solves,
        // same nodes, same rebuild and reuse counts.
        prop_assert_eq!(t.stats(), c.stats());
        // And it really ran in trail mode: any scoped solve marks.
        let ts = t.trail_stats();
        prop_assert_eq!(ts.trail_marks, ts.clones_avoided);
        prop_assert_eq!(c.trail_stats().trail_marks, 0);
    }

    /// The probe sweep shape: one shared path condition, then every
    /// hypothesis solved as a sibling scope. This is the hot path the
    /// trail replaces clones on, so it gets its own generator weighted
    /// toward many hypotheses against one path.
    #[test]
    fn prop_probe_sweep_matches_clone(
        path in proptest::collection::vec(arb_constraint(), 1..5),
        hyps in proptest::collection::vec(arb_constraint(), 1..10)
    ) {
        let (mut t, mut c) = pair();
        for con in &path {
            t.push_assert(con.clone());
            c.push_assert(con.clone());
        }
        for h in &hyps {
            let p = PreparedConstraint::new(h.clone());
            let (ra, rb) = (t.solve_under_prepared(&p), c.solve_under_prepared(&p));
            assert_same_answer!(ra, rb, &h);
            t.clear_cached_model();
            c.clear_cached_model();
        }
        prop_assert_eq!(t.stats(), c.stats());
    }

    /// Dirty-scope rebuilds: force an `ObjEq` into a scope (aliasing
    /// makes the engine rebuild from scratch at the next solve), then
    /// keep solving below and after popping it. The trail must unwind
    /// correctly across the rebuild boundary.
    #[test]
    fn prop_rebuild_boundary_matches_clone(
        before in proptest::collection::vec(arb_constraint(), 0..4),
        after in proptest::collection::vec(arb_constraint(), 1..5)
    ) {
        let (mut t, mut c) = pair();
        for con in &before {
            t.push_assert(con.clone());
            c.push_assert(con.clone());
        }
        let alias = Constraint::ObjEq(VarId(0), VarId(1));
        t.push_assert(alias.clone());
        c.push_assert(alias);
        for h in &after {
            let (ra, rb) = (t.solve_under(h), c.solve_under(h));
            assert_same_answer!(ra, rb, &h);
            t.clear_cached_model();
            c.clear_cached_model();
        }
        t.pop();
        c.pop();
        let (ra, rb) = (t.solve(), c.solve());
        assert_same_answer!(ra, rb, t.constraints());
        prop_assert_eq!(t.stats(), c.stats());
        prop_assert!(t.stats().rebuilds > 0,
                     "the ObjEq scope should have forced at least one rebuild");
    }

    /// Model reuse (`set_reuse_models`, the campaign's probe setting)
    /// composes with the trail: revalidated models and the fallback
    /// re-solves both match clone mode exactly.
    #[test]
    fn prop_model_reuse_composes_with_trail(
        path in proptest::collection::vec(arb_constraint(), 1..4),
        hyps in proptest::collection::vec(arb_constraint(), 1..8)
    ) {
        let (mut t, mut c) = pair();
        t.set_reuse_models(true);
        c.set_reuse_models(true);
        for con in &path {
            t.push_assert(con.clone());
            c.push_assert(con.clone());
        }
        for h in &hyps {
            let (ra, rb) = (t.solve_under(h), c.solve_under(h));
            assert_same_answer!(ra, rb, &h);
        }
        prop_assert_eq!(t.stats(), c.stats());
    }
}

/// Deterministic spot check: a quadruple loop leaves both sessions at
/// depth 0 with empty trails, and the trail-mode store is bit-restored
/// (a follow-up solve answers identically).
#[test]
fn quadruple_loop_restores_cleanly() {
    let (mut t, mut c) = (Session::new(), Session::new());
    t.set_trail(true);
    c.set_trail(false);
    for s in [&mut t, &mut c] {
        let x = s.add_var(VarSpec::any());
        let y = s.add_var(VarSpec::any());
        s.assert(Constraint::kind_is(x, Kind::SmallInt));
        s.assert(Constraint::Int(
            CmpOp::Eq,
            LinExpr::var(x).plus(&LinExpr::var(y)),
            LinExpr::constant(7),
        ));
    }
    let hyps = [
        Constraint::kind_is(VarId(1), Kind::SmallInt),
        Constraint::kind_is(VarId(1), Kind::Float),
        Constraint::Int(CmpOp::Lt, LinExpr::var(VarId(0)), LinExpr::constant(-100)),
        Constraint::kind_is(VarId(0), Kind::Array),
    ];
    for _ in 0..3 {
        for h in &hyps {
            t.push();
            c.push();
            t.assert(h.clone());
            c.assert(h.clone());
            assert_eq!(t.solve(), c.solve(), "diverged on {h:?}");
            t.pop();
            c.pop();
            t.clear_cached_model();
            c.clear_cached_model();
        }
    }
    assert_eq!(t.depth(), 0);
    assert_eq!(t.stats(), c.stats());
    let ts = t.trail_stats();
    assert!(ts.trail_marks > 0);
    assert_eq!(ts.trail_marks, ts.clones_avoided);
    assert!(ts.undone_ops > 0, "narrowings should have been unwound");
    assert_eq!(t.solve(), c.solve());
}
