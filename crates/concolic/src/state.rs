//! The abstract frame/object state (Fig. 3 of the paper).
//!
//! `AbstractState` is the constraint model's variable registry: one
//! variable per potential frame ingredient (receiver, operand-stack
//! slots, temps, literals) plus per-object shape variables (element
//! count, slot contents). Variables are created lazily, exactly when
//! the interpreter first touches the corresponding location — which is
//! what lets the explorer grow frames in response to
//! `InvalidFrame`/`InvalidMemoryAccess` exits (§3.4).

use igjit_heap::ClassIndex;
use igjit_solver::{Kind, KindSet, VarId, VarSpec};

/// What a variable stands for.
#[derive(Clone, PartialEq, Debug)]
pub enum VarRole {
    /// A VM value (abstract object) of any kind.
    Value,
    /// A counter: operand-stack size, temp count, literal count or an
    /// object's element count.
    Counter,
}

/// Per-object shape info: the element-count variable and the (lazily
/// grown) content variables.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ObjShape {
    /// The element-count variable (slot count / byte count).
    pub size_var: Option<VarId>,
    /// Content variables by 0-based index (pointer slots).
    pub slots: Vec<Option<VarId>>,
}

/// The variable registry shared by the explorer, the tracing context
/// and the materializer.
#[derive(Clone, PartialEq, Debug)]
pub struct AbstractState {
    specs: Vec<VarSpec>,
    roles: Vec<VarRole>,
    shapes: Vec<ObjShape>,
    /// `operand_stack_size` (Fig. 2).
    pub stack_size: VarId,
    /// Number of temps the frame provides.
    pub temp_count: VarId,
    /// Number of literals the method provides.
    pub literal_count: VarId,
    /// The receiver variable.
    pub receiver: VarId,
    /// Operand-stack value variables by depth from the top (index 0 is
    /// the top, `s1` in the paper's figures).
    pub stack_vars: Vec<VarId>,
    /// Temp variables by index.
    pub temp_vars: Vec<VarId>,
    /// Literal variables by index.
    pub literal_vars: Vec<VarId>,
}

/// Largest operand stack / temp / literal frame the explorer will
/// materialize.
pub const MAX_FRAME_ELEMS: i64 = 8;
/// Largest object the materializer will allocate slots for.
pub const MAX_OBJ_ELEMS: i64 = 16;

impl Default for AbstractState {
    fn default() -> Self {
        Self::new()
    }
}

impl AbstractState {
    /// A fresh state with the three frame counters and the receiver.
    pub fn new() -> AbstractState {
        let mut s = AbstractState {
            specs: Vec::new(),
            roles: Vec::new(),
            shapes: Vec::new(),
            stack_size: VarId(0),
            temp_count: VarId(0),
            literal_count: VarId(0),
            receiver: VarId(0),
            stack_vars: Vec::new(),
            temp_vars: Vec::new(),
            literal_vars: Vec::new(),
        };
        s.stack_size = s.new_var(VarSpec::counter(MAX_FRAME_ELEMS), VarRole::Counter);
        s.temp_count = s.new_var(VarSpec::counter(MAX_FRAME_ELEMS), VarRole::Counter);
        s.literal_count = s.new_var(VarSpec::counter(MAX_FRAME_ELEMS), VarRole::Counter);
        s.receiver = s.new_var(VarSpec::any(), VarRole::Value);
        s
    }

    /// Creates a variable.
    pub fn new_var(&mut self, spec: VarSpec, role: VarRole) -> VarId {
        let id = VarId(self.specs.len() as u32);
        self.specs.push(spec);
        self.roles.push(role);
        self.shapes.push(ObjShape::default());
        id
    }

    /// Number of registered variables.
    pub fn var_count(&self) -> usize {
        self.specs.len()
    }

    /// The spec of a variable.
    pub fn spec(&self, v: VarId) -> VarSpec {
        self.specs[v.index()]
    }

    /// All variable specs in creation order (for syncing an
    /// incremental [`igjit_solver::Session`] with this state).
    pub fn specs(&self) -> &[VarSpec] {
        &self.specs
    }

    /// The role of a variable.
    pub fn role(&self, v: VarId) -> &VarRole {
        &self.roles[v.index()]
    }

    /// All variable roles in creation order (parallel to [`specs`](Self::specs)).
    pub fn roles(&self) -> &[VarRole] {
        &self.roles
    }

    /// The object shape attached to a value variable.
    pub fn shape(&self, v: VarId) -> &ObjShape {
        &self.shapes[v.index()]
    }

    /// All object shapes in creation order (parallel to [`specs`](Self::specs)).
    pub fn shapes(&self) -> &[ObjShape] {
        &self.shapes
    }

    /// Reassembles a state from its serialized parts (the corpus
    /// decoder's constructor; see `igjit-corpus`). The three slices
    /// must be parallel — one spec/role/shape triple per variable in
    /// creation order, exactly as [`specs`](Self::specs)/[`roles`](Self::roles)/
    /// [`shapes`](Self::shapes) expose them.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        specs: Vec<VarSpec>,
        roles: Vec<VarRole>,
        shapes: Vec<ObjShape>,
        stack_size: VarId,
        temp_count: VarId,
        literal_count: VarId,
        receiver: VarId,
        stack_vars: Vec<VarId>,
        temp_vars: Vec<VarId>,
        literal_vars: Vec<VarId>,
    ) -> AbstractState {
        AbstractState {
            specs,
            roles,
            shapes,
            stack_size,
            temp_count,
            literal_count,
            receiver,
            stack_vars,
            temp_vars,
            literal_vars,
        }
    }

    /// The element-count variable of `v`, created on first use.
    pub fn size_var_of(&mut self, v: VarId) -> VarId {
        if let Some(sv) = self.shapes[v.index()].size_var {
            return sv;
        }
        let sv = self.new_var(VarSpec::counter(MAX_OBJ_ELEMS), VarRole::Counter);
        self.shapes[v.index()].size_var = Some(sv);
        sv
    }

    /// The content variable for slot `idx` of `v`, created on first
    /// use. Answers `None` for unreasonably large indices.
    pub fn slot_var_of(&mut self, v: VarId, idx: i64) -> Option<VarId> {
        if !(0..MAX_OBJ_ELEMS).contains(&idx) {
            return None;
        }
        let idx = idx as usize;
        if self.shapes[v.index()].slots.len() <= idx {
            self.shapes[v.index()].slots.resize(idx + 1, None);
        }
        if let Some(sv) = self.shapes[v.index()].slots[idx] {
            return Some(sv);
        }
        let sv = self.new_var(VarSpec::any(), VarRole::Value);
        self.shapes[v.index()].slots[idx] = Some(sv);
        Some(sv)
    }

    /// The operand-stack variable at `depth` from the top, created on
    /// first use. `None` beyond the frame-size cap.
    pub fn stack_var_at(&mut self, depth: usize) -> Option<VarId> {
        if depth as i64 >= MAX_FRAME_ELEMS {
            return None;
        }
        while self.stack_vars.len() <= depth {
            let v = self.new_var(VarSpec::any(), VarRole::Value);
            self.stack_vars.push(v);
        }
        Some(self.stack_vars[depth])
    }

    /// The temp variable at `index`, created on first use.
    pub fn temp_var_at(&mut self, index: usize) -> Option<VarId> {
        if index as i64 >= MAX_FRAME_ELEMS {
            return None;
        }
        while self.temp_vars.len() <= index {
            let v = self.new_var(VarSpec::any(), VarRole::Value);
            self.temp_vars.push(v);
        }
        Some(self.temp_vars[index])
    }

    /// The literal variable at `index`, created on first use.
    pub fn literal_var_at(&mut self, index: usize) -> Option<VarId> {
        if index as i64 >= MAX_FRAME_ELEMS {
            return None;
        }
        while self.literal_vars.len() <= index {
            let v = self.new_var(VarSpec::any(), VarRole::Value);
            self.literal_vars.push(v);
        }
        Some(self.literal_vars[index])
    }

    /// Builds a solver [`Problem`](igjit_solver::Problem) over the
    /// registry with the given asserted constraints.
    pub fn problem_with(
        &self,
        constraints: &[igjit_solver::Constraint],
    ) -> igjit_solver::Problem {
        let mut p = igjit_solver::Problem::new();
        for spec in &self.specs {
            p.new_var(*spec);
        }
        for c in constraints {
            p.assert(c.clone());
        }
        p
    }
}

/// Maps a well-known class index to its constraint kind.
pub fn kind_for_class(class: ClassIndex) -> Option<Kind> {
    Some(match class {
        ClassIndex::SMALL_INTEGER => Kind::SmallInt,
        ClassIndex::FLOAT => Kind::Float,
        ClassIndex::ARRAY => Kind::Array,
        ClassIndex::BYTE_ARRAY => Kind::ByteArray,
        ClassIndex::STRING => Kind::String,
        ClassIndex::SYMBOL => Kind::Symbol,
        ClassIndex::OBJECT => Kind::Object,
        ClassIndex::COMPILED_METHOD => Kind::CompiledMethod,
        ClassIndex::EXTERNAL_ADDRESS => Kind::ExternalAddress,
        ClassIndex::WORD_ARRAY => Kind::WordArray,
        ClassIndex::CONTEXT => Kind::Context,
        ClassIndex::UNDEFINED_OBJECT => Kind::Nil,
        ClassIndex::TRUE => Kind::True,
        ClassIndex::FALSE => Kind::False,
        ClassIndex::ASSOCIATION => Kind::Association,
        _ => return None,
    })
}

/// Maps a kind back to its class index.
pub fn class_for_kind(kind: Kind) -> ClassIndex {
    match kind {
        Kind::SmallInt => ClassIndex::SMALL_INTEGER,
        Kind::Float => ClassIndex::FLOAT,
        Kind::Array => ClassIndex::ARRAY,
        Kind::ByteArray => ClassIndex::BYTE_ARRAY,
        Kind::String => ClassIndex::STRING,
        Kind::Symbol => ClassIndex::SYMBOL,
        Kind::Object => ClassIndex::OBJECT,
        Kind::CompiledMethod => ClassIndex::COMPILED_METHOD,
        Kind::ExternalAddress => ClassIndex::EXTERNAL_ADDRESS,
        Kind::WordArray => ClassIndex::WORD_ARRAY,
        Kind::Context => ClassIndex::CONTEXT,
        Kind::Nil => ClassIndex::UNDEFINED_OBJECT,
        Kind::True => ClassIndex::TRUE,
        Kind::False => ClassIndex::FALSE,
        Kind::Association => ClassIndex::ASSOCIATION,
    }
}

/// Kinds whose instances have pointer slots (targets of
/// `fetch_slot`/`store_slot`).
pub fn pointer_slot_kinds() -> KindSet {
    KindSet::of(&[
        Kind::Array,
        Kind::Object,
        Kind::CompiledMethod,
        Kind::Context,
        Kind::Association,
    ])
}

/// Kinds whose instances are byte-indexable.
pub fn byte_kinds() -> KindSet {
    KindSet::of(&[Kind::ByteArray, Kind::String, Kind::Symbol])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_has_frame_counters() {
        let s = AbstractState::new();
        assert_eq!(s.var_count(), 4);
        assert!(matches!(s.role(s.stack_size), VarRole::Counter));
        assert!(matches!(s.role(s.receiver), VarRole::Value));
    }

    #[test]
    fn lazy_growth_is_stable() {
        let mut s = AbstractState::new();
        let a = s.stack_var_at(0).unwrap();
        let b = s.stack_var_at(0).unwrap();
        assert_eq!(a, b);
        let c = s.stack_var_at(2).unwrap();
        assert_ne!(a, c);
        assert_eq!(s.stack_vars.len(), 3);
        assert!(s.stack_var_at(100).is_none());
    }

    #[test]
    fn object_shapes_grow_lazily() {
        let mut s = AbstractState::new();
        let r = s.receiver;
        let size1 = s.size_var_of(r);
        let size2 = s.size_var_of(r);
        assert_eq!(size1, size2);
        let slot = s.slot_var_of(r, 3).unwrap();
        assert_eq!(s.slot_var_of(r, 3), Some(slot));
        assert!(s.slot_var_of(r, -1).is_none());
        assert!(s.slot_var_of(r, 10_000).is_none());
    }

    #[test]
    fn kind_class_mapping_roundtrips() {
        for kind in Kind::ALL {
            assert_eq!(kind_for_class(class_for_kind(kind)), Some(kind));
        }
        assert_eq!(kind_for_class(ClassIndex(9999)), None);
    }

    #[test]
    fn problem_includes_all_vars() {
        let mut s = AbstractState::new();
        s.stack_var_at(1);
        let p = s.problem_with(&[]);
        assert_eq!(p.var_count(), s.var_count());
    }
}
