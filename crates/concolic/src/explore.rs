//! The concolic explorer: path enumeration by constraint negation.
//!
//! Implements §2.3 / Fig. 2 of the paper with the paper's one
//! deviation from textbook concolic testing: exploration does **not**
//! stop at failing paths — every exit condition (§3.4) is a result the
//! differential tester wants.

use std::collections::HashSet;

use igjit_bytecode::{Instruction, SpecialSelector};
use igjit_heap::{ObjectMemory, Oop};
use igjit_interp::{
    run_native, step, NativeMethodId, NativeOutcome, Selector, StepOutcome,
};
use igjit_solver::{Constraint, Model, Session, SessionStats, SolveError};

use crate::materialize::materialize_frame;
use crate::state::AbstractState;
use crate::sym::SymOop;

/// What instruction is being explored.
///
/// `Hash`/`Eq` make it usable as an [`crate::ExplorationCache`] key:
/// one exploration per instruction is shared by every compiler target.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InstrUnderTest {
    /// A bytecode instruction, driven through [`igjit_interp::step`].
    Bytecode(Instruction),
    /// A native method, driven through [`igjit_interp::run_native`].
    Native(NativeMethodId),
}

/// A message-send exit, with enough payload to compare against the
/// compiled code's trampoline call.
#[derive(Clone, PartialEq, Debug)]
pub struct SendRecord {
    /// The special selector, if the send came from an optimised
    /// bytecode; `None` for literal-selector sends.
    pub special: Option<SpecialSelector>,
    /// `true` for the `mustBeBoolean` error send.
    pub must_be_boolean: bool,
    /// The literal selector oop for generic sends.
    pub literal_selector: Option<Oop>,
    /// Receiver of the send.
    pub receiver: Oop,
    /// Arguments of the send.
    pub args: Vec<Oop>,
}

/// How one explored path finished (§3.4 exit conditions with their
/// payloads).
#[derive(Clone, PartialEq, Debug)]
pub enum PathOutcome {
    /// Bytecode ran to completion / native method returned.
    Success,
    /// The instruction took a jump (bytecode only).
    Jump {
        /// Displacement in bytes.
        displacement: i32,
    },
    /// Native-method operand validation failed.
    Failure,
    /// Execution left for a message send.
    MessageSend(SendRecord),
    /// The method returned.
    MethodReturn {
        /// The returned value.
        value: Oop,
    },
    /// The generated frame was too small.
    InvalidFrame,
    /// Out-of-bounds object access.
    InvalidMemoryAccess,
    /// Unsupported VM feature (curated out, §5.2).
    Unsupported {
        /// What is missing.
        reason: &'static str,
    },
}

impl PathOutcome {
    /// Maps to the paper's exit-condition lattice (None for
    /// unsupported paths, which the curation step removes).
    pub fn exit_condition(&self) -> Option<igjit_interp::ExitCondition> {
        use igjit_interp::ExitCondition as E;
        Some(match self {
            PathOutcome::Success | PathOutcome::Jump { .. } => E::Success,
            PathOutcome::Failure => E::Failure,
            PathOutcome::MessageSend(_) => E::MessageSend,
            PathOutcome::MethodReturn { .. } => E::MethodReturn,
            PathOutcome::InvalidFrame => E::InvalidFrame,
            PathOutcome::InvalidMemoryAccess => E::InvalidMemoryAccess,
            PathOutcome::Unsupported { .. } => return None,
        })
    }
}

/// Snapshot of one input object after the instruction ran (for
/// side-effect comparison).
#[derive(Clone, PartialEq, Debug)]
pub struct ObjectDump {
    /// The input variable this object materialized.
    pub var: igjit_solver::VarId,
    /// Its oop in the exploration heap.
    pub oop: Oop,
    /// Pointer slots after execution (empty for non-pointer formats).
    pub slots: Vec<Oop>,
    /// Bytes after execution (empty for non-byte formats).
    pub bytes: Vec<u8>,
}

/// One fully-explored execution path of an instruction.
#[derive(Clone, Debug)]
pub struct ExploredPath {
    /// The instruction.
    pub instruction: InstrUnderTest,
    /// The recorded path condition (input constraints).
    pub constraints: Vec<Constraint>,
    /// The solver model the concrete frame was built from.
    pub model: Model,
    /// The §3.4 exit (with payloads).
    pub outcome: PathOutcome,
    /// Operand stack after execution (oracle output).
    pub output_stack: Vec<Oop>,
    /// Temps after execution.
    pub output_temps: Vec<Oop>,
    /// Post-state of every materialized input object.
    pub object_dumps: Vec<ObjectDump>,
}

/// Why a discovered path was excluded by curation (§5.2).
#[derive(Clone, PartialEq, Debug)]
pub enum CurationReason {
    /// The constraint solver failed on this prefix.
    SolverError(SolveError),
    /// The path reaches an unsupported VM feature.
    Unsupported(&'static str),
    /// The per-instruction iteration budget ran out first.
    Budget,
}

/// The result of exploring one instruction.
#[derive(Clone, Debug)]
pub struct ExplorationResult {
    /// All distinct paths found (including unsupported ones).
    pub paths: Vec<ExploredPath>,
    /// Curation records for the prefixes that produced no usable path.
    pub curated_out: Vec<CurationReason>,
    /// The final abstract state (shape registry), needed to
    /// re-materialize any path's frame elsewhere.
    pub state: AbstractState,
    /// Number of solver/execute iterations spent.
    pub iterations: usize,
    /// Work counters of the incremental solver session that drove the
    /// negation-tree walk.
    pub solver: SessionStats,
    /// Precomputed kind-probe models, aligned index-for-index with
    /// [`ExplorationResult::curated_paths`]. Empty unless
    /// [`ExplorationResult::attach_probe_models`] ran (the exploration
    /// cache calls it when probing is enabled), in which case each
    /// entry starts with the path's base model. Probing is a pure
    /// function of the exploration, so attaching it to the shared
    /// result lets every compiler target reuse one probe pass.
    pub probe_models: Vec<Vec<Model>>,
}

impl ExplorationResult {
    /// Paths that survive curation: solver-representable and
    /// supported by the prototype.
    pub fn curated_paths(&self) -> Vec<&ExploredPath> {
        self.paths
            .iter()
            .filter(|p| !matches!(p.outcome, PathOutcome::Unsupported { .. }))
            .collect()
    }

    /// Runs kind probing once for every curated path and stores the
    /// resulting models in [`ExplorationResult::probe_models`]. The
    /// probe solver's work counters are folded into
    /// [`ExplorationResult::solver`], so a campaign charging this
    /// exploration charges its probing too.
    pub fn attach_probe_models(&mut self, max_probes: usize) {
        let mut all = Vec::new();
        let mut stats = SessionStats::default();
        for path in self.curated_paths() {
            let (models, s) = crate::probes::probe_models_with_stats(&self.state, path, max_probes);
            stats.merge(&s);
            all.push(models);
        }
        self.probe_models = all;
        self.solver.merge(&stats);
    }
}

/// The concolic explorer. Create one per instruction exploration.
#[derive(Clone, Debug)]
pub struct Explorer {
    /// Max solve/run iterations per instruction.
    pub max_iterations: usize,
    /// Max recorded path length considered for negation.
    pub max_path_len: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer::new()
    }
}

impl Explorer {
    /// An explorer with default budgets.
    pub fn new() -> Explorer {
        Explorer { max_iterations: 192, max_path_len: 48 }
    }

    /// Explores every reachable execution path of `instr`.
    pub fn explore(&self, instr: InstrUnderTest) -> ExplorationResult {
        self.explore_impl(instr, |ctx, frame| match instr {
            InstrUnderTest::Bytecode(i) => convert_step(step(ctx, frame, i)),
            InstrUnderTest::Native(id) => convert_native(run_native(ctx, frame, id)),
        })
    }

    /// Explores a straight-line bytecode **sequence** (the paper's
    /// future-work extension): instructions execute in order; a send,
    /// return, taken jump or failure anywhere terminates the path with
    /// that exit, and running off the end is a success.
    ///
    /// The recorded path condition covers the whole sequence, so one
    /// negation loop explores the cross product of the instructions'
    /// branch structures.
    pub fn explore_sequence(&self, instrs: &[Instruction]) -> ExplorationResult {
        assert!(!instrs.is_empty(), "empty sequence");
        let tag = InstrUnderTest::Bytecode(*instrs.last().expect("nonempty"));
        let instrs = instrs.to_vec();
        self.explore_impl(tag, move |ctx, frame| {
            for (i, &instr) in instrs.iter().enumerate() {
                let last = i + 1 == instrs.len();
                match step(ctx, frame, instr) {
                    StepOutcome::Continue => {
                        if last {
                            return PathOutcome::Success;
                        }
                    }
                    other => return convert_step(other),
                }
            }
            PathOutcome::Success
        })
    }

    fn explore_impl<F>(&self, instr: InstrUnderTest, exec: F) -> ExplorationResult
    where
        F: Fn(
            &mut crate::trace::ConcolicContext<'_>,
            &mut igjit_interp::Frame<SymOop>,
        ) -> PathOutcome,
    {
        let mut walk = NegationWalk {
            explorer: self,
            instr,
            exec: &exec,
            state: AbstractState::new(),
            session: Session::new(),
            visited: HashSet::new(),
            paths: Vec::new(),
            curated_out: Vec::new(),
            iterations: 0,
            budget_noted: false,
        };
        walk.visit(0);
        let solver = walk.session.stats();
        ExplorationResult {
            paths: walk.paths,
            curated_out: walk.curated_out,
            state: walk.state,
            iterations: walk.iterations,
            solver,
            probe_models: Vec::new(),
        }
    }
}

/// The negation-tree walk, as a depth-first recursion over an
/// incremental solver [`Session`]: each tree edge pushes one scope
/// (the negated branch step), so a child's solve reuses its whole
/// prefix's classification and propagation state instead of rebuilding
/// the `Problem` from scratch.
///
/// Children are visited in *descending* suffix position — exactly the
/// order the previous LIFO-worklist implementation popped them in — so
/// path discovery order, the iteration budget cut-off, and therefore
/// every downstream table are unchanged.
struct NegationWalk<'e, F> {
    explorer: &'e Explorer,
    instr: InstrUnderTest,
    exec: &'e F,
    state: AbstractState,
    session: Session,
    visited: HashSet<String>,
    paths: Vec<ExploredPath>,
    curated_out: Vec<CurationReason>,
    iterations: usize,
    budget_noted: bool,
}

impl<F> NegationWalk<'_, F>
where
    F: Fn(&mut crate::trace::ConcolicContext<'_>, &mut igjit_interp::Frame<SymOop>) -> PathOutcome,
{
    /// Visits the node whose path condition is currently in scope in
    /// the session; `depth` is the number of prefix steps already
    /// negated (children only negate suffix positions `>= depth`).
    fn visit(&mut self, depth: usize) {
        if self.iterations >= self.explorer.max_iterations {
            if !self.budget_noted {
                self.budget_noted = true;
                self.curated_out.push(CurationReason::Budget);
            }
            return;
        }
        self.iterations += 1;

        self.session.sync_vars(self.state.specs());
        let model = match self.session.solve() {
            Ok(m) => m,
            Err(SolveError::Unsat) => return,
            Err(e) => {
                self.curated_out.push(CurationReason::SolverError(e));
                return;
            }
        };

        let mut mem = ObjectMemory::new();
        let mat = materialize_frame(&mut self.state, &model, &mut mem);
        let mut frame = mat.frame.clone();
        let (outcome, path) = {
            let mut ctx =
                crate::trace::ConcolicContext::new(&mut mem, &mut self.state, frame.depth());
            let outcome = (self.exec)(&mut ctx, &mut frame);
            (outcome, ctx.take_path())
        };
        let path: Vec<Constraint> =
            path.into_iter().take(self.explorer.max_path_len).collect();

        let signature = format!("{path:?}|{:?}", discriminant_of(&outcome));
        if !self.visited.insert(signature) {
            return;
        }
        // Snapshot outputs for the oracle.
        let output_stack: Vec<Oop> = frame.stack.iter().map(|s| s.concrete).collect();
        let output_temps: Vec<Oop> = frame.temps.iter().map(|s| s.concrete).collect();
        let mut object_dumps = Vec::new();
        for (&var, &oop) in &mat.var_oops {
            if !mem.is_live_object(oop) {
                continue;
            }
            let slots = match mem.format_of(oop) {
                Ok(f) if f.has_pointer_slots() => {
                    let n = mem.element_count(oop).unwrap_or(0);
                    (0..n).filter_map(|i| mem.fetch_pointer(oop, i).ok()).collect()
                }
                _ => Vec::new(),
            };
            let bytes = match mem.format_of(oop) {
                Ok(f) if f.is_bytes() => {
                    let n = mem.byte_count(oop).unwrap_or(0);
                    (0..n).filter_map(|i| mem.fetch_byte(oop, i).ok()).collect()
                }
                _ => Vec::new(),
            };
            object_dumps.push(ObjectDump { var, oop, slots, bytes });
        }
        object_dumps.sort_by_key(|d| d.var);
        if let PathOutcome::Unsupported { reason } = outcome {
            self.curated_out.push(CurationReason::Unsupported(reason));
        }
        self.paths.push(ExploredPath {
            instruction: self.instr,
            constraints: path.clone(),
            model,
            outcome,
            output_stack,
            output_temps,
            object_dumps,
        });
        // Children: negate each not-yet-negated suffix step. The
        // recorded path extends the in-scope prefix (the model
        // satisfied it and branch outcomes are deterministic), so the
        // prefix scopes stay put; extend with the new suffix, then
        // peel it back one step at a time, negating as we go.
        // Execution may have grown the abstract state (lazy slot and
        // size variables); sync before asserting constraints on them.
        self.session.sync_vars(self.state.specs());
        let len = path.len();
        for step in path.iter().take(len).skip(depth) {
            self.session.push_assert(step.clone());
        }
        for i in (depth..len).rev() {
            self.session.pop(); // retract `path[i]`…
            self.session.push_assert(path[i].negated()); // …negate it…
            self.visit(i + 1); // …and explore that subtree.
            self.session.pop();
        }
    }
}

fn discriminant_of(o: &PathOutcome) -> u8 {
    match o {
        PathOutcome::Success => 0,
        PathOutcome::Jump { .. } => 1,
        PathOutcome::Failure => 2,
        PathOutcome::MessageSend(_) => 3,
        PathOutcome::MethodReturn { .. } => 4,
        PathOutcome::InvalidFrame => 5,
        PathOutcome::InvalidMemoryAccess => 6,
        PathOutcome::Unsupported { .. } => 7,
    }
}

fn convert_step(outcome: StepOutcome<SymOop>) -> PathOutcome {
    match outcome {
        StepOutcome::Continue => PathOutcome::Success,
        StepOutcome::Jump { displacement } => PathOutcome::Jump { displacement },
        StepOutcome::MethodReturn { value } => {
            PathOutcome::MethodReturn { value: value.concrete }
        }
        StepOutcome::MessageSend { selector, receiver, args } => {
            let (special, must_be_boolean, literal_selector) = match selector {
                Selector::Special(s) => (Some(s), false, None),
                Selector::MustBeBoolean => (None, true, None),
                Selector::Literal(v) => (None, false, Some(v.concrete)),
            };
            PathOutcome::MessageSend(SendRecord {
                special,
                must_be_boolean,
                literal_selector,
                receiver: receiver.concrete,
                args: args.into_iter().map(|a| a.concrete).collect(),
            })
        }
        StepOutcome::InvalidFrame => PathOutcome::InvalidFrame,
        StepOutcome::InvalidMemoryAccess => PathOutcome::InvalidMemoryAccess,
        StepOutcome::Unsupported { reason } => PathOutcome::Unsupported { reason },
    }
}

fn convert_native(outcome: NativeOutcome<SymOop>) -> PathOutcome {
    match outcome {
        NativeOutcome::Success { .. } => PathOutcome::Success,
        NativeOutcome::Failure => PathOutcome::Failure,
        NativeOutcome::InvalidFrame => PathOutcome::InvalidFrame,
        NativeOutcome::InvalidMemoryAccess => PathOutcome::InvalidMemoryAccess,
        NativeOutcome::Unsupported { reason } => PathOutcome::Unsupported { reason },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igjit_interp::ExitCondition;
    use igjit_solver::solve;

    fn explore_bytecode(i: Instruction) -> ExplorationResult {
        Explorer::new().explore(InstrUnderTest::Bytecode(i))
    }

    fn exits(r: &ExplorationResult) -> Vec<ExitCondition> {
        r.paths.iter().filter_map(|p| p.outcome.exit_condition()).collect()
    }

    #[test]
    fn add_bytecode_reproduces_table_1() {
        let r = explore_bytecode(Instruction::Add);
        let ex = exits(&r);
        // Fig. 2 / Table 1: invalid frame (empty stack), int+int
        // success, overflow send, type-mismatch sends.
        assert!(ex.contains(&ExitCondition::InvalidFrame), "{ex:?}");
        assert!(ex.contains(&ExitCondition::Success), "{ex:?}");
        assert!(ex.contains(&ExitCondition::MessageSend), "{ex:?}");
        assert!(r.paths.len() >= 5, "only {} paths", r.paths.len());

        // At least one send path must be the overflow case: two
        // SmallInteger inputs whose sum leaves the range.
        let has_overflow = r.paths.iter().any(|p| {
            matches!(p.outcome, PathOutcome::MessageSend(ref s)
                if s.special == Some(SpecialSelector::Plus)
                && s.receiver.is_small_int() && s.args[0].is_small_int()
                && igjit_heap::Oop::try_from_small_int(
                    s.receiver.small_int_value() + s.args[0].small_int_value()
                ).is_none())
        });
        assert!(has_overflow, "no overflow path found");
    }

    #[test]
    fn add_bytecode_finds_the_float_fast_path() {
        let r = explore_bytecode(Instruction::Add);
        let has_float_success = r.paths.iter().any(|p| {
            matches!(p.outcome, PathOutcome::Success)
                && p.output_stack.last().is_some_and(|v| v.is_pointer())
        });
        assert!(has_float_success, "float+float inlined path not explored");
    }

    #[test]
    fn push_receiver_variable_grows_the_receiver() {
        let r = explore_bytecode(Instruction::PushReceiverVariable(1));
        let ex = exits(&r);
        assert!(ex.contains(&ExitCondition::InvalidMemoryAccess), "{ex:?}");
        assert!(ex.contains(&ExitCondition::Success), "{ex:?}");
        // The success path must have a receiver with >= 2 slots.
        let ok = r.paths.iter().find(|p| matches!(p.outcome, PathOutcome::Success)).unwrap();
        let rcvr_dump = ok
            .object_dumps
            .iter()
            .find(|d| d.var == r.state.receiver)
            .expect("receiver dumped");
        assert!(rcvr_dump.slots.len() >= 2, "{:?}", rcvr_dump.slots);
    }

    #[test]
    fn pop_explores_empty_and_nonempty_stacks() {
        let r = explore_bytecode(Instruction::Pop);
        let ex = exits(&r);
        assert!(ex.contains(&ExitCondition::InvalidFrame));
        assert!(ex.contains(&ExitCondition::Success));
        assert_eq!(r.paths.len(), 2, "pop has exactly two paths");
    }

    #[test]
    fn push_constant_has_single_path() {
        let r = explore_bytecode(Instruction::PushTrue);
        assert_eq!(r.paths.len(), 1);
        assert!(matches!(r.paths[0].outcome, PathOutcome::Success));
        assert_eq!(r.paths[0].output_stack.len(), 1);
    }

    #[test]
    fn conditional_jump_explores_all_three_ways() {
        let r = explore_bytecode(Instruction::ShortJumpTrue(4));
        let has_jump = r.paths.iter().any(|p| matches!(p.outcome, PathOutcome::Jump { .. }));
        let has_continue = r.paths.iter().any(|p| matches!(p.outcome, PathOutcome::Success));
        let has_mbb = r.paths.iter().any(|p| {
            matches!(p.outcome, PathOutcome::MessageSend(ref s) if s.must_be_boolean)
        });
        assert!(has_jump, "jump-taken path missing");
        assert!(has_continue, "fall-through path missing");
        assert!(has_mbb, "mustBeBoolean path missing");
    }

    #[test]
    fn push_this_context_is_curated_out() {
        let r = explore_bytecode(Instruction::PushThisContext);
        assert!(matches!(r.paths[0].outcome, PathOutcome::Unsupported { .. }));
        assert!(r.curated_paths().is_empty());
        assert!(matches!(r.curated_out[0], CurationReason::Unsupported(_)));
    }

    #[test]
    fn native_add_explores_failure_and_success() {
        let r = Explorer::new().explore(InstrUnderTest::Native(NativeMethodId(1)));
        let ex = exits(&r);
        assert!(ex.contains(&ExitCondition::InvalidFrame));
        assert!(ex.contains(&ExitCondition::Success));
        assert!(ex.contains(&ExitCondition::Failure), "type-check failure paths");
        assert!(r.paths.len() >= 4, "{}", r.paths.len());
    }

    #[test]
    fn native_as_float_records_no_type_check() {
        // The Listing 5 defect: exploration finds no Failure path for
        // the receiver type, because the interpreter never checks it.
        let r = Explorer::new().explore(InstrUnderTest::Native(NativeMethodId(40)));
        let ex = exits(&r);
        assert!(!ex.contains(&ExitCondition::Failure), "{ex:?}");
        assert!(ex.contains(&ExitCondition::Success));
    }

    #[test]
    fn native_float_add_has_many_paths() {
        let r = Explorer::new().explore(InstrUnderTest::Native(NativeMethodId(41)));
        let ex = exits(&r);
        assert!(ex.contains(&ExitCondition::Failure));
        assert!(ex.contains(&ExitCondition::Success));
        // receiver not float / arg not float / both float.
        assert!(r.paths.len() >= 4, "{}", r.paths.len());
    }

    #[test]
    fn returns_report_method_return() {
        let r = explore_bytecode(Instruction::ReturnReceiver);
        assert!(matches!(r.paths[0].outcome, PathOutcome::MethodReturn { .. }));
    }

    #[test]
    fn sequences_chain_constraints_across_instructions() {
        // push 2; push 3; Add; Pop — runs clean end to end.
        let r = Explorer::new().explore_sequence(&[
            Instruction::PushTwo,
            Instruction::PushInteger(3),
            Instruction::Add,
            Instruction::Pop,
        ]);
        // Constants only: one success path, empty output stack.
        let successes: Vec<_> = r
            .paths
            .iter()
            .filter(|p| matches!(p.outcome, PathOutcome::Success))
            .collect();
        assert_eq!(successes.len(), 1, "{:?}", r.paths);
        assert!(successes[0].output_stack.is_empty());
    }

    #[test]
    fn sequences_explore_operand_dependent_branches() {
        // [Add, Add]: the first Add's operands come from the frame;
        // paths must include double-success and first-add-sends.
        let r = Explorer::new()
            .explore_sequence(&[Instruction::Add, Instruction::Add]);
        let has_full_success = r.paths.iter().any(|p| {
            matches!(p.outcome, PathOutcome::Success) && p.output_stack.len() == 1
        });
        let has_send = r
            .paths
            .iter()
            .any(|p| matches!(p.outcome, PathOutcome::MessageSend(_)));
        assert!(has_full_success, "three ints summed twice");
        assert!(has_send, "a slow path somewhere in the chain");
        // The double-add needs three operands on the frame.
        assert!(r.state.stack_vars.len() >= 3);
    }

    #[test]
    fn sequence_jumps_terminate_the_path() {
        let r = Explorer::new().explore_sequence(&[
            Instruction::PushTrue,
            Instruction::ShortJumpTrue(4),
            Instruction::PushNil, // unreachable when the jump is taken
        ]);
        assert!(r
            .paths
            .iter()
            .any(|p| matches!(p.outcome, PathOutcome::Jump { .. })));
    }

    #[test]
    fn models_satisfy_their_paths() {
        // Every explored path's model assigns the counters
        // consistently with the recorded constraints.
        let r = explore_bytecode(Instruction::Add);
        for p in &r.paths {
            let problem = r.state.problem_with(&p.constraints);
            assert!(
                solve(&problem).is_ok(),
                "recorded path should be satisfiable: {:?}",
                p.constraints
            );
        }
    }
}
