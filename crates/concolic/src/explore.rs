//! The concolic explorer: path enumeration by constraint negation.
//!
//! Implements §2.3 / Fig. 2 of the paper with the paper's one
//! deviation from textbook concolic testing: exploration does **not**
//! stop at failing paths — every exit condition (§3.4) is a result the
//! differential tester wants.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use igjit_bytecode::fxhash::FxHashSet;
use igjit_bytecode::{Instruction, SpecialSelector};
use igjit_heap::{ObjectMemory, Oop};
use igjit_interp::{
    run_native, step, NativeMethodId, NativeOutcome, Selector, StepOutcome,
};
use igjit_solver::{
    Constraint, Model, Session, SessionStats, SolveError, TermTable, TrailStats, VarId,
};

use crate::materialize::{materialize_frame, MaterializedFrame};
use crate::state::AbstractState;
use crate::sym::SymOop;

/// Why an exploration request was rejected before any path ran.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExploreError {
    /// [`Explorer::explore_sequence`] was handed no instructions.
    EmptySequence,
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::EmptySequence => {
                write!(f, "cannot explore an empty instruction sequence")
            }
        }
    }
}

impl std::error::Error for ExploreError {}

/// What instruction is being explored.
///
/// `Hash`/`Eq` make it usable as an [`crate::ExplorationCache`] key:
/// one exploration per instruction is shared by every compiler target.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InstrUnderTest {
    /// A bytecode instruction, driven through [`igjit_interp::step`].
    Bytecode(Instruction),
    /// A native method, driven through [`igjit_interp::run_native`].
    Native(NativeMethodId),
}

/// A message-send exit, with enough payload to compare against the
/// compiled code's trampoline call.
#[derive(Clone, PartialEq, Debug)]
pub struct SendRecord {
    /// The special selector, if the send came from an optimised
    /// bytecode; `None` for literal-selector sends.
    pub special: Option<SpecialSelector>,
    /// `true` for the `mustBeBoolean` error send.
    pub must_be_boolean: bool,
    /// The literal selector oop for generic sends.
    pub literal_selector: Option<Oop>,
    /// Receiver of the send.
    pub receiver: Oop,
    /// Arguments of the send.
    pub args: Vec<Oop>,
}

/// How one explored path finished (§3.4 exit conditions with their
/// payloads).
#[derive(Clone, PartialEq, Debug)]
pub enum PathOutcome {
    /// Bytecode ran to completion / native method returned.
    Success,
    /// The instruction took a jump (bytecode only).
    Jump {
        /// Displacement in bytes.
        displacement: i32,
    },
    /// Native-method operand validation failed.
    Failure,
    /// Execution left for a message send.
    MessageSend(SendRecord),
    /// The method returned.
    MethodReturn {
        /// The returned value.
        value: Oop,
    },
    /// The generated frame was too small.
    InvalidFrame,
    /// Out-of-bounds object access.
    InvalidMemoryAccess,
    /// Unsupported VM feature (curated out, §5.2).
    Unsupported {
        /// What is missing.
        reason: &'static str,
    },
}

impl PathOutcome {
    /// Maps to the paper's exit-condition lattice (None for
    /// unsupported paths, which the curation step removes).
    pub fn exit_condition(&self) -> Option<igjit_interp::ExitCondition> {
        use igjit_interp::ExitCondition as E;
        Some(match self {
            PathOutcome::Success | PathOutcome::Jump { .. } => E::Success,
            PathOutcome::Failure => E::Failure,
            PathOutcome::MessageSend(_) => E::MessageSend,
            PathOutcome::MethodReturn { .. } => E::MethodReturn,
            PathOutcome::InvalidFrame => E::InvalidFrame,
            PathOutcome::InvalidMemoryAccess => E::InvalidMemoryAccess,
            PathOutcome::Unsupported { .. } => return None,
        })
    }
}

/// Snapshot of one input object after the instruction ran (for
/// side-effect comparison).
#[derive(Clone, PartialEq, Debug)]
pub struct ObjectDump {
    /// The input variable this object materialized.
    pub var: igjit_solver::VarId,
    /// Its oop in the exploration heap.
    pub oop: Oop,
    /// Pointer slots after execution (empty for non-pointer formats).
    pub slots: Vec<Oop>,
    /// Bytes after execution (empty for non-byte formats).
    pub bytes: Vec<u8>,
}

/// One fully-explored execution path of an instruction.
#[derive(Clone, Debug)]
pub struct ExploredPath {
    /// The instruction.
    pub instruction: InstrUnderTest,
    /// The recorded path condition (input constraints).
    pub constraints: Vec<Constraint>,
    /// The solver model the concrete frame was built from.
    pub model: Model,
    /// The §3.4 exit (with payloads).
    pub outcome: PathOutcome,
    /// Operand stack after execution (oracle output).
    pub output_stack: Vec<Oop>,
    /// Temps after execution.
    pub output_temps: Vec<Oop>,
    /// Post-state of every materialized input object.
    pub object_dumps: Vec<ObjectDump>,
}

/// Why a discovered path was excluded by curation (§5.2).
#[derive(Clone, PartialEq, Debug)]
pub enum CurationReason {
    /// The constraint solver failed on this prefix.
    SolverError(SolveError),
    /// The path reaches an unsupported VM feature.
    Unsupported(&'static str),
    /// The per-instruction iteration budget ran out first.
    Budget,
}

/// One executed node of a negation walk, recorded (in walk order) so
/// a family member can *replay* its representative's exploration:
/// re-run the member's instruction against the same solver models and
/// verify the recorded tree shape holds, instead of re-solving the
/// whole tree.
#[derive(Clone, Debug)]
pub struct ReplayStep {
    /// The model the node's concrete frame was built from.
    pub model: Model,
    /// The path condition execution recorded (post-truncation).
    pub constraints: Vec<Constraint>,
    /// Outcome discriminant (payloads are member-specific and are
    /// recomputed by the replay, e.g. jump displacements).
    pub disc: u8,
    /// The curation reason when the outcome was `Unsupported`.
    pub unsupported: Option<&'static str>,
    /// Whether this node survived path dedup and stored a path
    /// (`false` for signature-duplicate nodes that only burned an
    /// iteration).
    pub stored: bool,
}

/// The result of exploring one instruction.
#[derive(Clone, Debug)]
pub struct ExplorationResult {
    /// All distinct paths found (including unsupported ones).
    pub paths: Vec<ExploredPath>,
    /// Curation records for the prefixes that produced no usable path.
    pub curated_out: Vec<CurationReason>,
    /// The final abstract state (shape registry), needed to
    /// re-materialize any path's frame elsewhere.
    pub state: AbstractState,
    /// Number of solver/execute iterations spent.
    pub iterations: usize,
    /// Work counters of the incremental solver session that drove the
    /// negation-tree walk.
    pub solver: SessionStats,
    /// Trail-mode counters of the same sessions (undo-log marks,
    /// clones avoided, pool traffic) — separate from
    /// [`ExplorationResult::solver`] because those are pinned identical
    /// between trail and clone mode while these measure the mode.
    pub trail: TrailStats,
    /// Precomputed kind-probe models, aligned index-for-index with
    /// [`ExplorationResult::curated_paths`]. Empty unless
    /// [`ExplorationResult::attach_probe_models`] ran (the exploration
    /// cache calls it when probing is enabled), in which case each
    /// entry starts with the path's base model. Probing is a pure
    /// function of the exploration, so attaching it to the shared
    /// result lets every compiler target reuse one probe pass.
    pub probe_models: Vec<Vec<Model>>,
    /// The walk-order execution log, present only when the explorer
    /// ran with [`Explorer::record_replay`] — the exploration cache
    /// records it on family representatives so members can replay
    /// them.
    pub replay_log: Option<Vec<ReplayStep>>,
    /// Time spent materializing frames and concretely executing the
    /// instruction inside the negation walk — a sub-slice of the
    /// campaign's `explore` stage, attributed separately so the stage
    /// table shows where the walk's wall time actually goes.
    pub walk_run: Duration,
    /// Time spent solving kind-probe hypotheses
    /// ([`ExplorationResult::attach_probe_models`]) — the other
    /// instrumented sub-slice of the `explore` stage.
    pub probe_solve: Duration,
}

impl ExplorationResult {
    /// Paths that survive curation: solver-representable and
    /// supported by the prototype.
    pub fn curated_paths(&self) -> Vec<&ExploredPath> {
        self.paths
            .iter()
            .filter(|p| !matches!(p.outcome, PathOutcome::Unsupported { .. }))
            .collect()
    }

    /// Runs kind probing once for every curated path and stores the
    /// resulting models in [`ExplorationResult::probe_models`]. The
    /// probe solver's work counters are folded into
    /// [`ExplorationResult::solver`], so a campaign charging this
    /// exploration charges its probing too.
    /// One solver session serves every path: variables are synced and
    /// normalization plans warmed once, each path's condition lives in
    /// its own push/pop scope, and the cached model is cleared between
    /// paths so no path's reuse can see another's model — keeping the
    /// models per path exactly those of a fresh per-path session.
    pub fn attach_probe_models(&mut self, max_probes: usize, hash_cons: bool, solver_trail: bool) {
        let probe_t = Instant::now();
        let mut all = Vec::new();
        let mut session = Session::new();
        session.set_reuse_models(true);
        session.set_hash_cons(hash_cons);
        session.set_trail(solver_trail);
        session.sync_vars(self.state.specs());
        let plan = crate::probes::ProbePlan::new(&self.state);
        for path in self.curated_paths() {
            session.push();
            let models =
                crate::probes::probe_path(&mut session, &self.state, &plan, path, max_probes);
            session.pop();
            session.clear_cached_model();
            all.push(models);
        }
        self.probe_models = all;
        self.solver.merge(&session.stats());
        self.trail.merge(&session.trail_stats());
        self.probe_solve += probe_t.elapsed();
    }
}

/// The concolic explorer. Create one per instruction exploration.
#[derive(Clone, Debug)]
pub struct Explorer {
    /// Max solve/run iterations per instruction.
    pub max_iterations: usize,
    /// Max recorded path length considered for negation.
    pub max_path_len: usize,
    /// Hash-cons constraints inside the walk's solver session and key
    /// path dedup on interned term ids instead of `format!`ed text
    /// (`IGJIT_HASH_CONS`). Invisible to results. The campaign runs
    /// with it on (engine v8: seeded-`FxHash` intern tables made the
    /// consed walk the faster one again); the bare `Explorer` default
    /// stays off so direct users get the dependency-free text path.
    pub hash_cons: bool,
    /// Number of threads negating sibling subtrees of the root path
    /// in parallel (`IGJIT_NEGATE_THREADS`; `1` = sequential).
    /// Subtrees are explored speculatively and spliced back in the
    /// sequential walk order, falling back to an in-place sequential
    /// re-run whenever a speculation is not provably equivalent — so
    /// results are deterministic and identical to a sequential walk.
    pub negation_threads: usize,
    /// Record a [`ReplayStep`] per executed node (family-sharing
    /// support; costs one model clone per node, so off by default).
    pub record_replay: bool,
    /// Run solver scopes on the session's undo trail instead of
    /// cloning the interval store per hypothesis
    /// (`IGJIT_SOLVER_TRAIL`, engine v10). Results are pinned
    /// identical either way; this only trades clone traffic for trail
    /// bookkeeping. Defaults on.
    pub solver_trail: bool,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer::new()
    }
}

impl Explorer {
    /// An explorer with default budgets.
    pub fn new() -> Explorer {
        Explorer {
            max_iterations: 192,
            max_path_len: 48,
            hash_cons: false,
            negation_threads: 1,
            record_replay: false,
            solver_trail: true,
        }
    }

    /// Explores every reachable execution path of `instr`.
    pub fn explore(&self, instr: InstrUnderTest) -> ExplorationResult {
        self.explore_impl(instr, |ctx, frame| match instr {
            InstrUnderTest::Bytecode(i) => convert_step(step(ctx, frame, i)),
            InstrUnderTest::Native(id) => convert_native(run_native(ctx, frame, id)),
        })
    }

    /// Explores a straight-line bytecode **sequence** (the paper's
    /// future-work extension): instructions execute in order; a send,
    /// return, taken jump or failure anywhere terminates the path with
    /// that exit, and running off the end is a success.
    ///
    /// The recorded path condition covers the whole sequence, so one
    /// negation loop explores the cross product of the instructions'
    /// branch structures.
    pub fn explore_sequence(
        &self,
        instrs: &[Instruction],
    ) -> Result<ExplorationResult, ExploreError> {
        let Some(&tag) = instrs.last() else {
            return Err(ExploreError::EmptySequence);
        };
        let tag = InstrUnderTest::Bytecode(tag);
        let instrs = instrs.to_vec();
        Ok(self.explore_impl(tag, move |ctx, frame| {
            for (i, &instr) in instrs.iter().enumerate() {
                let last = i + 1 == instrs.len();
                match step(ctx, frame, instr) {
                    StepOutcome::Continue => {
                        if last {
                            return PathOutcome::Success;
                        }
                    }
                    other => return convert_step(other),
                }
            }
            PathOutcome::Success
        }))
    }

    fn explore_impl<F>(&self, instr: InstrUnderTest, exec: F) -> ExplorationResult
    where
        F: Fn(
                &mut crate::trace::ConcolicContext<'_>,
                &mut igjit_interp::Frame<SymOop>,
            ) -> PathOutcome
            + Sync,
    {
        let mut session = Session::new();
        session.set_hash_cons(self.hash_cons);
        session.set_trail(self.solver_trail);
        // Interned path signatures are only comparable within one
        // table; speculative subtree workers each build their own, so
        // the parallel walk keys dedup on the textual signature.
        let sig_table = (self.hash_cons && self.negation_threads <= 1).then(TermTable::new);
        let mut walk = NegationWalk {
            explorer: self,
            instr,
            exec: &exec,
            state: AbstractState::new(),
            session,
            sig_table,
            visited: FxHashSet::default(),
            paths: Vec::new(),
            curated_out: Vec::new(),
            iterations: 0,
            budget_noted: false,
            extra_stats: SessionStats::default(),
            extra_trail: TrailStats::default(),
            replay: Vec::new(),
            scratch: None,
            run_time: Duration::ZERO,
        };
        walk.visit(0);
        let mut solver = walk.session.stats();
        solver.merge(&walk.extra_stats);
        let mut trail = walk.session.trail_stats();
        trail.merge(&walk.extra_trail);
        ExplorationResult {
            paths: walk.paths,
            curated_out: walk.curated_out,
            state: walk.state,
            iterations: walk.iterations,
            solver,
            trail,
            probe_models: Vec::new(),
            replay_log: self.record_replay.then_some(walk.replay),
            walk_run: walk.run_time,
            probe_solve: Duration::ZERO,
        }
    }
}

/// The negation-tree walk, as a depth-first recursion over an
/// incremental solver [`Session`]: each tree edge pushes one scope
/// (the negated branch step), so a child's solve reuses its whole
/// prefix's classification and propagation state instead of rebuilding
/// the `Problem` from scratch.
///
/// Children are visited in *descending* suffix position — exactly the
/// order the previous LIFO-worklist implementation popped them in — so
/// path discovery order, the iteration budget cut-off, and therefore
/// every downstream table are unchanged.
struct NegationWalk<'e, F> {
    explorer: &'e Explorer,
    instr: InstrUnderTest,
    exec: &'e F,
    state: AbstractState,
    session: Session,
    /// Present iff dedup keys on interned constraint ids; `None`
    /// falls back to the historical textual signature.
    sig_table: Option<TermTable>,
    visited: FxHashSet<PathSig>,
    paths: Vec<ExploredPath>,
    curated_out: Vec<CurationReason>,
    iterations: usize,
    budget_noted: bool,
    /// Solver work done by spliced speculative subtrees (their fresh
    /// sessions), folded into the final result's counters.
    extra_stats: SessionStats,
    /// Trail-mode counters of those same spliced subtree sessions.
    extra_trail: TrailStats,
    /// Walk-order replay log (only fed when `record_replay` is on).
    replay: Vec<ReplayStep>,
    /// Scratch heap reused across visits (reset to fresh each time)
    /// so the walk does not pay an arena allocation per node.
    scratch: Option<ObjectMemory>,
    /// Cumulative frame-materialization + concrete-execution time
    /// (the `walk_run` sub-slice of the `explore` stage).
    run_time: Duration,
}

/// A path-dedup key: the path condition plus the outcome
/// discriminant. Both forms implement the same equivalence — the
/// interner's structural identity matches `{:?}` text (NaNs collapse,
/// `-0.0` stays distinct from `0.0`) — but ids are only comparable
/// within one [`TermTable`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum PathSig {
    Text(String),
    Ids(Vec<u32>, u8),
}

/// One speculatively-explored sibling subtree, produced by a worker
/// thread from a snapshot of the walk taken right after the parent
/// node executed.
struct Subtree {
    state: AbstractState,
    visited: FxHashSet<PathSig>,
    paths: Vec<ExploredPath>,
    curated_out: Vec<CurationReason>,
    consumed: usize,
    budget_noted: bool,
    stats: SessionStats,
    trail: TrailStats,
    replay: Vec<ReplayStep>,
    run_time: Duration,
}

/// The walk snapshot speculative workers start from, plus their
/// results in canonical (descending suffix position) merge order.
struct Speculation {
    base_state: AbstractState,
    base_visited: FxHashSet<PathSig>,
    subtrees: Vec<Option<Subtree>>,
}

/// Sibling subtrees below which root-level speculation
/// (`IGJIT_NEGATE_THREADS > 1`) is skipped: on shallow negation trees
/// the thread spawn + snapshot overhead exceeds the parallel win (the
/// v8 ablation measured ~33 ms vs ~27 ms sequential at 2 subtrees), so
/// the walk only speculates when the root path offers at least this
/// many independent suffix negations. The splice order is unchanged —
/// below the threshold the walk simply takes the sequential branch it
/// would fall back to anyway, so results are identical by
/// construction.
const SPECULATION_MIN_SUBTREES: usize = 4;

impl<F> NegationWalk<'_, F>
where
    F: Fn(&mut crate::trace::ConcolicContext<'_>, &mut igjit_interp::Frame<SymOop>) -> PathOutcome
        + Sync,
{
    /// Visits the node whose path condition is currently in scope in
    /// the session; `depth` is the number of prefix steps already
    /// negated (children only negate suffix positions `>= depth`).
    fn visit(&mut self, depth: usize) {
        if self.iterations >= self.explorer.max_iterations {
            if !self.budget_noted {
                self.budget_noted = true;
                self.curated_out.push(CurationReason::Budget);
            }
            return;
        }
        self.iterations += 1;

        self.session.sync_vars(self.state.specs());
        let model = match self.session.solve() {
            Ok(m) => m,
            Err(SolveError::Unsat) => return,
            Err(e) => {
                self.curated_out.push(CurationReason::SolverError(e));
                return;
            }
        };

        let run_t = Instant::now();
        let mut mem = match self.scratch.take() {
            Some(mut m) => {
                m.reset();
                m
            }
            None => ObjectMemory::new(),
        };
        let MaterializedFrame { mut frame, var_oops, .. } =
            materialize_frame(&mut self.state, &model, &mut mem);
        let (outcome, mut path) = {
            let mut ctx =
                crate::trace::ConcolicContext::new(&mut mem, &mut self.state, frame.depth());
            let outcome = (self.exec)(&mut ctx, &mut frame);
            (outcome, ctx.take_path())
        };
        self.run_time += run_t.elapsed();
        path.truncate(self.explorer.max_path_len);
        let path = path;

        let disc = discriminant_of(&outcome);
        let signature = match &mut self.sig_table {
            Some(t) => PathSig::Ids(path.iter().map(|c| t.intern(c).0).collect(), disc),
            None => PathSig::Text(format!("{path:?}|{disc:?}")),
        };
        let is_new = self.visited.insert(signature);
        if self.explorer.record_replay {
            self.replay.push(ReplayStep {
                model: model.clone(),
                constraints: path.clone(),
                disc,
                unsupported: match outcome {
                    PathOutcome::Unsupported { reason } => Some(reason),
                    _ => None,
                },
                stored: is_new,
            });
        }
        if !is_new {
            self.session.recycle_model(model);
            self.scratch = Some(mem);
            return;
        }
        // Snapshot outputs for the oracle.
        let (output_stack, output_temps, object_dumps) =
            snapshot_outputs(&frame, &mem, &var_oops);
        self.scratch = Some(mem);
        if let PathOutcome::Unsupported { reason } = outcome {
            self.curated_out.push(CurationReason::Unsupported(reason));
        }
        self.paths.push(ExploredPath {
            instruction: self.instr,
            constraints: path.clone(),
            model,
            outcome,
            output_stack,
            output_temps,
            object_dumps,
        });
        // Children: negate each not-yet-negated suffix step. The
        // recorded path extends the in-scope prefix (the model
        // satisfied it and branch outcomes are deterministic), so the
        // prefix scopes stay put; extend with the new suffix, then
        // peel it back one step at a time, negating as we go.
        // Execution may have grown the abstract state (lazy slot and
        // size variables); sync before asserting constraints on them.
        self.session.sync_vars(self.state.specs());
        let len = path.len();
        for step in path.iter().take(len).skip(depth) {
            self.session.push_assert(step.clone());
        }
        let mut speculation = (depth == 0
            && self.explorer.negation_threads > 1
            && len - depth >= SPECULATION_MIN_SUBTREES)
            .then(|| self.speculate_subtrees(depth, &path));
        for (k, i) in (depth..len).rev().enumerate() {
            self.session.pop(); // retract `path[i]`…
            self.session.push_assert(path[i].negated()); // …negate it…
            let sub = speculation.as_mut().and_then(|sp| sp.subtrees[k].take());
            let spliced = match (sub, &speculation) {
                (Some(sub), Some(sp)) => self.try_splice(sub, sp),
                _ => false,
            };
            if !spliced {
                self.visit(i + 1); // …and explore that subtree.
            }
            self.session.pop();
        }
    }

    /// Explores every sibling subtree of the root node concurrently,
    /// each worker starting from a snapshot of the walk and a fresh
    /// solver session asserting the same in-scope constraint sequence
    /// (which the session determinism contract makes equivalent).
    /// Workers drain one shared atomic index — no locks anywhere —
    /// and results land in per-subtree slots for the deterministic
    /// in-order merge done by [`NegationWalk::try_splice`].
    fn speculate_subtrees(&mut self, depth: usize, path: &[Constraint]) -> Speculation {
        let len = path.len();
        let base_state = self.state.clone();
        let base_visited = self.visited.clone();
        let base_iter = self.iterations;
        let order: Vec<usize> = (depth..len).rev().collect();
        let next = AtomicUsize::new(0);
        let slots: Vec<OnceLock<Subtree>> = order.iter().map(|_| OnceLock::new()).collect();
        let explorer = self.explorer;
        let instr = self.instr;
        let exec = self.exec;
        std::thread::scope(|s| {
            for _ in 0..explorer.negation_threads.min(order.len()) {
                s.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = order.get(k) else { break };
                    let mut session = Session::new();
                    session.set_hash_cons(explorer.hash_cons);
                    session.set_trail(explorer.solver_trail);
                    let mut w = NegationWalk {
                        explorer,
                        instr,
                        exec,
                        state: base_state.clone(),
                        session,
                        sig_table: None,
                        visited: base_visited.clone(),
                        paths: Vec::new(),
                        curated_out: Vec::new(),
                        iterations: base_iter,
                        budget_noted: false,
                        extra_stats: SessionStats::default(),
                        extra_trail: TrailStats::default(),
                        replay: Vec::new(),
                        scratch: None,
                        run_time: Duration::ZERO,
                    };
                    w.session.sync_vars(w.state.specs());
                    for c in &path[..i] {
                        w.session.push_assert(c.clone());
                    }
                    w.session.push_assert(path[i].negated());
                    w.visit(i + 1);
                    let stats = w.session.stats();
                    let mut trail = w.session.trail_stats();
                    trail.merge(&w.extra_trail);
                    let _ = slots[k].set(Subtree {
                        state: w.state,
                        visited: w.visited,
                        paths: w.paths,
                        curated_out: w.curated_out,
                        consumed: w.iterations - base_iter,
                        budget_noted: w.budget_noted,
                        stats,
                        trail,
                        replay: w.replay,
                        run_time: w.run_time,
                    });
                });
            }
        });
        Speculation {
            base_state,
            base_visited,
            subtrees: slots.into_iter().map(OnceLock::into_inner).collect(),
        }
    }

    /// Adopts a speculative subtree's results if they are provably
    /// what the sequential walk would have computed in place:
    ///
    /// * no earlier subtree changed the abstract state the worker
    ///   snapshot started from (new variables would renumber),
    /// * none of the worker's newly-visited path signatures collide
    ///   with signatures an earlier subtree claimed (dedup races),
    /// * the iteration budget provably never cuts in mid-subtree.
    ///
    /// Returns `false` (splice refused, caller re-runs sequentially)
    /// otherwise.
    fn try_splice(&mut self, sub: Subtree, sp: &Speculation) -> bool {
        if sub.budget_noted
            || self.iterations + sub.consumed > self.explorer.max_iterations
            || self.state != sp.base_state
        {
            return false;
        }
        let fresh: Vec<&PathSig> = sub.visited.difference(&sp.base_visited).collect();
        if fresh.iter().any(|sig| self.visited.contains(*sig)) {
            return false;
        }
        self.state = sub.state;
        for sig in sub.visited {
            self.visited.insert(sig);
        }
        self.paths.extend(sub.paths);
        self.curated_out.extend(sub.curated_out);
        self.iterations += sub.consumed;
        self.extra_stats.merge(&sub.stats);
        self.extra_trail.merge(&sub.trail);
        self.replay.extend(sub.replay);
        self.run_time += sub.run_time;
        true
    }
}

/// Snapshots a frame's oracle outputs — operand stack, temps and the
/// post-state of every live materialized input object — shared by the
/// negation walk and the family-replay path so both produce
/// byte-identical [`ExploredPath`] rows.
pub(crate) fn snapshot_outputs(
    frame: &igjit_interp::Frame<SymOop>,
    mem: &ObjectMemory,
    var_oops: &igjit_heap::fxhash::FxHashMap<VarId, Oop>,
) -> (Vec<Oop>, Vec<Oop>, Vec<ObjectDump>) {
    let output_stack: Vec<Oop> = frame.stack.iter().map(|s| s.concrete).collect();
    let output_temps: Vec<Oop> = frame.temps.iter().map(|s| s.concrete).collect();
    let mut object_dumps = Vec::new();
    for (&var, &oop) in var_oops {
        if !mem.is_live_object(oop) {
            continue;
        }
        let slots = match mem.format_of(oop) {
            Ok(f) if f.has_pointer_slots() => {
                let n = mem.element_count(oop).unwrap_or(0);
                (0..n).filter_map(|i| mem.fetch_pointer(oop, i).ok()).collect()
            }
            _ => Vec::new(),
        };
        let bytes = match mem.format_of(oop) {
            Ok(f) if f.is_bytes() => {
                let n = mem.byte_count(oop).unwrap_or(0);
                (0..n).filter_map(|i| mem.fetch_byte(oop, i).ok()).collect()
            }
            _ => Vec::new(),
        };
        object_dumps.push(ObjectDump { var, oop, slots, bytes });
    }
    object_dumps.sort_by_key(|d| d.var);
    (output_stack, output_temps, object_dumps)
}

pub(crate) fn discriminant_of(o: &PathOutcome) -> u8 {
    match o {
        PathOutcome::Success => 0,
        PathOutcome::Jump { .. } => 1,
        PathOutcome::Failure => 2,
        PathOutcome::MessageSend(_) => 3,
        PathOutcome::MethodReturn { .. } => 4,
        PathOutcome::InvalidFrame => 5,
        PathOutcome::InvalidMemoryAccess => 6,
        PathOutcome::Unsupported { .. } => 7,
    }
}

pub(crate) fn convert_step(outcome: StepOutcome<SymOop>) -> PathOutcome {
    match outcome {
        StepOutcome::Continue => PathOutcome::Success,
        StepOutcome::Jump { displacement } => PathOutcome::Jump { displacement },
        StepOutcome::MethodReturn { value } => {
            PathOutcome::MethodReturn { value: value.concrete }
        }
        StepOutcome::MessageSend { selector, receiver, args } => {
            let (special, must_be_boolean, literal_selector) = match selector {
                Selector::Special(s) => (Some(s), false, None),
                Selector::MustBeBoolean => (None, true, None),
                Selector::Literal(v) => (None, false, Some(v.concrete)),
            };
            PathOutcome::MessageSend(SendRecord {
                special,
                must_be_boolean,
                literal_selector,
                receiver: receiver.concrete,
                args: args.into_iter().map(|a| a.concrete).collect(),
            })
        }
        StepOutcome::InvalidFrame => PathOutcome::InvalidFrame,
        StepOutcome::InvalidMemoryAccess => PathOutcome::InvalidMemoryAccess,
        StepOutcome::Unsupported { reason } => PathOutcome::Unsupported { reason },
    }
}

fn convert_native(outcome: NativeOutcome<SymOop>) -> PathOutcome {
    match outcome {
        NativeOutcome::Success { .. } => PathOutcome::Success,
        NativeOutcome::Failure => PathOutcome::Failure,
        NativeOutcome::InvalidFrame => PathOutcome::InvalidFrame,
        NativeOutcome::InvalidMemoryAccess => PathOutcome::InvalidMemoryAccess,
        NativeOutcome::Unsupported { reason } => PathOutcome::Unsupported { reason },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igjit_interp::ExitCondition;
    use igjit_solver::solve;

    fn explore_bytecode(i: Instruction) -> ExplorationResult {
        Explorer::new().explore(InstrUnderTest::Bytecode(i))
    }

    fn exits(r: &ExplorationResult) -> Vec<ExitCondition> {
        r.paths.iter().filter_map(|p| p.outcome.exit_condition()).collect()
    }

    #[test]
    fn add_bytecode_reproduces_table_1() {
        let r = explore_bytecode(Instruction::Add);
        let ex = exits(&r);
        // Fig. 2 / Table 1: invalid frame (empty stack), int+int
        // success, overflow send, type-mismatch sends.
        assert!(ex.contains(&ExitCondition::InvalidFrame), "{ex:?}");
        assert!(ex.contains(&ExitCondition::Success), "{ex:?}");
        assert!(ex.contains(&ExitCondition::MessageSend), "{ex:?}");
        assert!(r.paths.len() >= 5, "only {} paths", r.paths.len());

        // At least one send path must be the overflow case: two
        // SmallInteger inputs whose sum leaves the range.
        let has_overflow = r.paths.iter().any(|p| {
            matches!(p.outcome, PathOutcome::MessageSend(ref s)
                if s.special == Some(SpecialSelector::Plus)
                && s.receiver.is_small_int() && s.args[0].is_small_int()
                && igjit_heap::Oop::try_from_small_int(
                    s.receiver.small_int_value() + s.args[0].small_int_value()
                ).is_none())
        });
        assert!(has_overflow, "no overflow path found");
    }

    #[test]
    fn add_bytecode_finds_the_float_fast_path() {
        let r = explore_bytecode(Instruction::Add);
        let has_float_success = r.paths.iter().any(|p| {
            matches!(p.outcome, PathOutcome::Success)
                && p.output_stack.last().is_some_and(|v| v.is_pointer())
        });
        assert!(has_float_success, "float+float inlined path not explored");
    }

    #[test]
    fn push_receiver_variable_grows_the_receiver() {
        let r = explore_bytecode(Instruction::PushReceiverVariable(1));
        let ex = exits(&r);
        assert!(ex.contains(&ExitCondition::InvalidMemoryAccess), "{ex:?}");
        assert!(ex.contains(&ExitCondition::Success), "{ex:?}");
        // The success path must have a receiver with >= 2 slots.
        let ok = r.paths.iter().find(|p| matches!(p.outcome, PathOutcome::Success)).unwrap();
        let rcvr_dump = ok
            .object_dumps
            .iter()
            .find(|d| d.var == r.state.receiver)
            .expect("receiver dumped");
        assert!(rcvr_dump.slots.len() >= 2, "{:?}", rcvr_dump.slots);
    }

    #[test]
    fn pop_explores_empty_and_nonempty_stacks() {
        let r = explore_bytecode(Instruction::Pop);
        let ex = exits(&r);
        assert!(ex.contains(&ExitCondition::InvalidFrame));
        assert!(ex.contains(&ExitCondition::Success));
        assert_eq!(r.paths.len(), 2, "pop has exactly two paths");
    }

    #[test]
    fn push_constant_has_single_path() {
        let r = explore_bytecode(Instruction::PushTrue);
        assert_eq!(r.paths.len(), 1);
        assert!(matches!(r.paths[0].outcome, PathOutcome::Success));
        assert_eq!(r.paths[0].output_stack.len(), 1);
    }

    #[test]
    fn conditional_jump_explores_all_three_ways() {
        let r = explore_bytecode(Instruction::ShortJumpTrue(4));
        let has_jump = r.paths.iter().any(|p| matches!(p.outcome, PathOutcome::Jump { .. }));
        let has_continue = r.paths.iter().any(|p| matches!(p.outcome, PathOutcome::Success));
        let has_mbb = r.paths.iter().any(|p| {
            matches!(p.outcome, PathOutcome::MessageSend(ref s) if s.must_be_boolean)
        });
        assert!(has_jump, "jump-taken path missing");
        assert!(has_continue, "fall-through path missing");
        assert!(has_mbb, "mustBeBoolean path missing");
    }

    #[test]
    fn push_this_context_is_curated_out() {
        let r = explore_bytecode(Instruction::PushThisContext);
        assert!(matches!(r.paths[0].outcome, PathOutcome::Unsupported { .. }));
        assert!(r.curated_paths().is_empty());
        assert!(matches!(r.curated_out[0], CurationReason::Unsupported(_)));
    }

    #[test]
    fn native_add_explores_failure_and_success() {
        let r = Explorer::new().explore(InstrUnderTest::Native(NativeMethodId(1)));
        let ex = exits(&r);
        assert!(ex.contains(&ExitCondition::InvalidFrame));
        assert!(ex.contains(&ExitCondition::Success));
        assert!(ex.contains(&ExitCondition::Failure), "type-check failure paths");
        assert!(r.paths.len() >= 4, "{}", r.paths.len());
    }

    #[test]
    fn native_as_float_records_no_type_check() {
        // The Listing 5 defect: exploration finds no Failure path for
        // the receiver type, because the interpreter never checks it.
        let r = Explorer::new().explore(InstrUnderTest::Native(NativeMethodId(40)));
        let ex = exits(&r);
        assert!(!ex.contains(&ExitCondition::Failure), "{ex:?}");
        assert!(ex.contains(&ExitCondition::Success));
    }

    #[test]
    fn native_float_add_has_many_paths() {
        let r = Explorer::new().explore(InstrUnderTest::Native(NativeMethodId(41)));
        let ex = exits(&r);
        assert!(ex.contains(&ExitCondition::Failure));
        assert!(ex.contains(&ExitCondition::Success));
        // receiver not float / arg not float / both float.
        assert!(r.paths.len() >= 4, "{}", r.paths.len());
    }

    #[test]
    fn returns_report_method_return() {
        let r = explore_bytecode(Instruction::ReturnReceiver);
        assert!(matches!(r.paths[0].outcome, PathOutcome::MethodReturn { .. }));
    }

    #[test]
    fn sequences_chain_constraints_across_instructions() {
        // push 2; push 3; Add; Pop — runs clean end to end.
        let r = Explorer::new()
            .explore_sequence(&[
                Instruction::PushTwo,
                Instruction::PushInteger(3),
                Instruction::Add,
                Instruction::Pop,
            ])
            .unwrap();
        // Constants only: one success path, empty output stack.
        let successes: Vec<_> = r
            .paths
            .iter()
            .filter(|p| matches!(p.outcome, PathOutcome::Success))
            .collect();
        assert_eq!(successes.len(), 1, "{:?}", r.paths);
        assert!(successes[0].output_stack.is_empty());
    }

    #[test]
    fn sequences_explore_operand_dependent_branches() {
        // [Add, Add]: the first Add's operands come from the frame;
        // paths must include double-success and first-add-sends.
        let r = Explorer::new()
            .explore_sequence(&[Instruction::Add, Instruction::Add])
            .unwrap();
        let has_full_success = r.paths.iter().any(|p| {
            matches!(p.outcome, PathOutcome::Success) && p.output_stack.len() == 1
        });
        let has_send = r
            .paths
            .iter()
            .any(|p| matches!(p.outcome, PathOutcome::MessageSend(_)));
        assert!(has_full_success, "three ints summed twice");
        assert!(has_send, "a slow path somewhere in the chain");
        // The double-add needs three operands on the frame.
        assert!(r.state.stack_vars.len() >= 3);
    }

    #[test]
    fn sequence_jumps_terminate_the_path() {
        let r = Explorer::new()
            .explore_sequence(&[
                Instruction::PushTrue,
                Instruction::ShortJumpTrue(4),
                Instruction::PushNil, // unreachable when the jump is taken
            ])
            .unwrap();
        assert!(r
            .paths
            .iter()
            .any(|p| matches!(p.outcome, PathOutcome::Jump { .. })));
    }

    #[test]
    fn empty_sequences_are_an_error_not_a_panic() {
        assert_eq!(
            Explorer::new().explore_sequence(&[]).err(),
            Some(ExploreError::EmptySequence)
        );
    }

    fn paths_digest(r: &ExplorationResult) -> Vec<String> {
        r.paths
            .iter()
            .map(|p| {
                format!(
                    "{:?}|{:?}|{:?}|{:?}|{:?}",
                    p.constraints, p.outcome, p.output_stack, p.output_temps, p.object_dumps
                )
            })
            .collect()
    }

    #[test]
    fn textual_and_interned_dedup_agree() {
        for i in [Instruction::Add, Instruction::ShortJumpTrue(4), Instruction::Pop] {
            let mut consed = Explorer::new();
            consed.hash_cons = true;
            let a = consed.explore(InstrUnderTest::Bytecode(i));
            let b = explore_bytecode(i);
            assert_eq!(paths_digest(&a), paths_digest(&b), "{i:?}");
            assert_eq!(a.iterations, b.iterations, "{i:?}");
            assert_eq!(a.curated_out, b.curated_out, "{i:?}");
            assert_eq!(a.solver.nodes_visited, b.solver.nodes_visited, "{i:?}");
        }
    }

    #[test]
    fn parallel_negation_matches_sequential() {
        for i in [Instruction::Add, Instruction::ShortJumpTrue(4), Instruction::BitShift] {
            let mut par = Explorer::new();
            par.negation_threads = 4;
            let a = par.explore(InstrUnderTest::Bytecode(i));
            let b = explore_bytecode(i);
            assert_eq!(paths_digest(&a), paths_digest(&b), "{i:?}");
            assert_eq!(a.iterations, b.iterations, "{i:?}");
            assert_eq!(a.curated_out, b.curated_out, "{i:?}");
            assert_eq!(a.state, b.state, "{i:?}");
        }
    }

    #[test]
    fn replay_log_covers_every_stored_path() {
        let mut ex = Explorer::new();
        ex.record_replay = true;
        let r = ex.explore(InstrUnderTest::Bytecode(Instruction::Add));
        let log = r.replay_log.as_ref().expect("log recorded");
        let stored: Vec<_> = log.iter().filter(|s| s.stored).collect();
        assert_eq!(stored.len(), r.paths.len());
        for (step, path) in stored.iter().zip(&r.paths) {
            assert_eq!(step.constraints, path.constraints);
            assert_eq!(step.model, path.model);
            assert_eq!(step.disc, discriminant_of(&path.outcome));
        }
    }

    #[test]
    fn models_satisfy_their_paths() {
        // Every explored path's model assigns the counters
        // consistently with the recorded constraints.
        let r = explore_bytecode(Instruction::Add);
        for p in &r.paths {
            let problem = r.state.problem_with(&p.constraints);
            assert!(
                solve(&problem).is_ok(),
                "recorded path should be satisfiable: {:?}",
                p.constraints
            );
        }
    }
}
