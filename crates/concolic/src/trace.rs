//! The tracing `VmContext`: concrete execution + constraint recording.
//!
//! Every predicate the interpreter evaluates returns its **concrete**
//! truth value (so execution proceeds exactly as the plain interpreter
//! would) and records the corresponding **semantic constraint** (§3.3)
//! into the path condition — the positive form of whatever actually
//! held, so the explorer can negate any step later.
//!
//! Divergence discipline: the recorded path is always *what actually
//! happened* in this concrete run. When a model assigns something the
//! materializer cannot represent exactly (e.g. a negative external
//! address), the next run simply records the path it really took —
//! the standard concolic treatment of divergences.

use igjit_heap::{ClassIndex, ObjectFormat, ObjectMemory};
use igjit_interp::{AllocFault, CmpKind, Frame, MemFault, VmContext};
use igjit_solver::{CmpOp, Constraint, FloatTerm, KindSet, LinExpr, VarId};

use crate::state::{byte_kinds, kind_for_class, pointer_slot_kinds, AbstractState};
use crate::sym::{ExprId, Origin, SymFloat, SymInt, SymOop};

/// The concolic execution context (one per path execution).
pub struct ConcolicContext<'a> {
    mem: &'a mut ObjectMemory,
    state: &'a mut AbstractState,
    exprs: Vec<LinExpr>,
    path: Vec<Constraint>,
    /// Writes performed on abstract objects during this run, so later
    /// reads observe them instead of the (input) slot variables.
    slot_overlay: Vec<((VarId, i64), SymOop)>,
    /// Operand-stack depth at the start of the run. Instructions
    /// mutate the stack, so depth constraints must be expressed
    /// against the *original* `operand_stack_size` variable:
    /// `stack_size >= depth + 1 - (current_depth - initial_depth)`.
    initial_stack_depth: usize,
}

fn cmp_op(op: CmpKind) -> CmpOp {
    match op {
        CmpKind::Lt => CmpOp::Lt,
        CmpKind::Le => CmpOp::Le,
        CmpKind::Gt => CmpOp::Gt,
        CmpKind::Ge => CmpOp::Ge,
        CmpKind::Eq => CmpOp::Eq,
        CmpKind::Ne => CmpOp::Ne,
    }
}

impl<'a> ConcolicContext<'a> {
    /// Creates a context over a freshly materialized heap.
    /// `initial_stack_depth` is the materialized frame's operand-stack
    /// depth before any instruction ran.
    pub fn new(
        mem: &'a mut ObjectMemory,
        state: &'a mut AbstractState,
        initial_stack_depth: usize,
    ) -> ConcolicContext<'a> {
        ConcolicContext {
            mem,
            state,
            exprs: Vec::new(),
            path: Vec::new(),
            slot_overlay: Vec::new(),
            initial_stack_depth,
        }
    }

    /// Consumes the context, yielding the recorded path condition.
    pub fn take_path(self) -> Vec<Constraint> {
        self.path
    }

    /// A read-only view of the path recorded so far.
    pub fn path(&self) -> &[Constraint] {
        &self.path
    }

    fn intern(&mut self, e: LinExpr) -> ExprId {
        let id = ExprId(self.exprs.len() as u32);
        self.exprs.push(e);
        id
    }

    fn expr_of(&self, n: SymInt) -> LinExpr {
        match n.expr {
            Some(id) => self.exprs[id.0 as usize].clone(),
            None => LinExpr::constant(n.concrete),
        }
    }

    fn record(&mut self, c: Constraint) {
        if !self.path.contains(&c) {
            self.path.push(c);
        }
    }

    /// Records `c` when `truth` holds, its negation otherwise —
    /// always the form that was actually observed.
    fn record_observed(&mut self, truth: bool, c: Constraint) {
        let c = if truth { c } else { c.negated() };
        self.record(c);
    }

    /// Records an integer comparison unless it is variable-free.
    fn record_int_cmp(&mut self, truth: bool, op: CmpOp, l: LinExpr, r: LinExpr) {
        if l.terms.is_empty() && r.terms.is_empty() {
            return;
        }
        self.record_observed(truth, Constraint::Int(op, l, r));
    }

    fn kind_facts(&mut self, v: SymOop, allowed: KindSet, truth: bool) {
        if let Origin::Var(var) = v.origin {
            self.record_observed(truth, Constraint::Kind { var, allowed });
        }
    }

    /// Classifies the receiver of a slot access: is it a
    /// pointer-slot-bearing object, and what are its size/index exprs.
    fn slot_access(
        &mut self,
        v: SymOop,
        idx: SymInt,
    ) -> Result<(Option<VarId>, LinExpr), MemFault> {
        let var = v.as_var();
        let has_slots = self
            .mem
            .format_of(v.concrete)
            .map(|f| f.has_pointer_slots())
            .unwrap_or(false);
        if let Some(var) = var {
            self.record_observed(has_slots, Constraint::Kind { var, allowed: pointer_slot_kinds() });
        }
        if !has_slots {
            return Err(MemFault);
        }
        let size = self.mem.element_count(v.concrete).map_err(|_| MemFault)?;
        let size_expr = match var {
            Some(var) => LinExpr::var(self.state.size_var_of(var)),
            None => LinExpr::constant(i64::from(size)),
        };
        let idx_expr = self.expr_of(idx);
        let in_bounds = idx.concrete >= 0 && idx.concrete < i64::from(size);
        if idx.concrete < 0 {
            self.record_int_cmp(true, CmpOp::Lt, idx_expr.clone(), LinExpr::constant(0));
        } else {
            self.record_int_cmp(true, CmpOp::Ge, idx_expr.clone(), LinExpr::constant(0));
            // size > idx on success, size <= idx on bounds failure.
            self.record_int_cmp(in_bounds, CmpOp::Gt, size_expr, idx_expr.clone());
        }
        if !in_bounds {
            return Err(MemFault);
        }
        Ok((var, idx_expr))
    }

    /// Bounds bookkeeping for byte/word element accesses.
    fn element_access(
        &mut self,
        v: SymOop,
        idx: SymInt,
        want_bytes: bool,
    ) -> Result<(), MemFault> {
        let var = v.as_var();
        let fmt = self.mem.format_of(v.concrete).ok();
        let matches = match fmt {
            Some(f) if want_bytes => f.is_bytes(),
            Some(ObjectFormat::Words) if !want_bytes => true,
            _ => false,
        };
        if let Some(var) = var {
            let set = if want_bytes {
                byte_kinds()
            } else {
                KindSet::of(&[igjit_solver::Kind::WordArray])
            };
            self.record_observed(matches, Constraint::Kind { var, allowed: set });
        }
        if !matches {
            return Err(MemFault);
        }
        let size = self.mem.element_count(v.concrete).map_err(|_| MemFault)?;
        let size_expr = match var {
            Some(var) => LinExpr::var(self.state.size_var_of(var)),
            None => LinExpr::constant(i64::from(size)),
        };
        let idx_expr = self.expr_of(idx);
        let in_bounds = idx.concrete >= 0 && idx.concrete < i64::from(size);
        if idx.concrete < 0 {
            self.record_int_cmp(true, CmpOp::Lt, idx_expr, LinExpr::constant(0));
        } else {
            self.record_int_cmp(true, CmpOp::Ge, idx_expr.clone(), LinExpr::constant(0));
            self.record_int_cmp(in_bounds, CmpOp::Gt, size_expr, idx_expr);
        }
        if in_bounds {
            Ok(())
        } else {
            Err(MemFault)
        }
    }

    fn overlay_get(&self, var: VarId, idx: i64) -> Option<SymOop> {
        self.slot_overlay
            .iter()
            .rev()
            .find(|(k, _)| *k == (var, idx))
            .map(|(_, v)| *v)
    }
}

impl VmContext for ConcolicContext<'_> {
    type V = SymOop;
    type N = SymInt;
    type F = SymFloat;

    fn nil(&mut self) -> SymOop {
        SymOop::constant(self.mem.nil())
    }
    fn true_obj(&mut self) -> SymOop {
        SymOop::constant(self.mem.true_object())
    }
    fn false_obj(&mut self) -> SymOop {
        SymOop::constant(self.mem.false_object())
    }
    fn int_const(&mut self, v: i64) -> SymInt {
        SymInt { concrete: v, expr: None }
    }
    fn small_int_obj(&mut self, v: i64) -> SymOop {
        SymOop::constant(igjit_heap::Oop::from_small_int(v))
    }

    fn is_integer_object(&mut self, v: SymOop) -> bool {
        let truth = v.concrete.is_small_int();
        self.kind_facts(v, KindSet::only(igjit_solver::Kind::SmallInt), truth);
        truth
    }

    fn has_class(&mut self, v: SymOop, class: ClassIndex) -> bool {
        let truth = self.mem.class_index_of(v.concrete) == class;
        if let Some(kind) = kind_for_class(class) {
            self.kind_facts(v, KindSet::only(kind), truth);
        }
        truth
    }

    fn is_integer_value(&mut self, n: SymInt) -> bool {
        let truth = (igjit_solver::SMALL_INT_MIN..=igjit_solver::SMALL_INT_MAX)
            .contains(&n.concrete);
        if n.expr.is_some() {
            let e = self.expr_of(n);
            let c = if truth {
                Constraint::in_small_int_range(e)
            } else {
                Constraint::not_in_small_int_range(e)
            };
            self.record(c);
        }
        truth
    }

    fn int_cmp(&mut self, op: CmpKind, a: SymInt, b: SymInt) -> bool {
        let truth = op.holds_int(a.concrete, b.concrete);
        let (ea, eb) = (self.expr_of(a), self.expr_of(b));
        let solver_op = cmp_op(op);
        let op_held = if truth { solver_op } else { solver_op.negated() };
        self.record_int_cmp(true, op_held, ea, eb);
        truth
    }

    fn float_cmp(&mut self, op: CmpKind, a: SymFloat, b: SymFloat) -> bool {
        let truth = op.holds_float(a.concrete, b.concrete);
        let ta = a.term.unwrap_or(FloatTerm::Const(a.concrete));
        let tb = b.term.unwrap_or(FloatTerm::Const(b.concrete));
        if a.term.is_some() || b.term.is_some() {
            let solver_op = cmp_op(op);
            let op_held = if truth { solver_op } else { solver_op.negated() };
            self.record(Constraint::Float(op_held, ta, tb));
        }
        truth
    }

    fn value_identical(&mut self, a: SymOop, b: SymOop) -> bool {
        let truth = a.concrete == b.concrete;
        if let (Origin::Var(va), Origin::Var(vb)) = (a.origin, b.origin) {
            if va != vb {
                let c = if truth {
                    Constraint::ObjEq(va, vb)
                } else {
                    Constraint::ObjNe(va, vb)
                };
                self.record(c);
            }
        }
        truth
    }

    fn integer_value_of(&mut self, v: SymOop) -> SymInt {
        let concrete = v.concrete.small_int_value();
        let expr = match v.origin {
            // The int attribute of an input variable *is* its untagged
            // value (when its kind is SmallInt; otherwise this run
            // diverges, which is recorded faithfully).
            Origin::Var(var) => Some(self.intern(LinExpr::var(var))),
            Origin::DerivedInt(e) => Some(e),
            _ => None,
        };
        SymInt { concrete, expr }
    }

    fn integer_object_of(&mut self, n: SymInt) -> SymOop {
        let concrete = igjit_heap::Oop::try_from_small_int(n.concrete)
            .unwrap_or_else(|| igjit_heap::Oop::from_small_int(n.concrete.clamp(
                igjit_heap::SMALL_INT_MIN,
                igjit_heap::SMALL_INT_MAX,
            )));
        let origin = match n.expr {
            Some(e) => Origin::DerivedInt(e),
            None => Origin::Const,
        };
        SymOop { concrete, origin }
    }

    fn float_value_of(&mut self, v: SymOop) -> SymFloat {
        let concrete = self.mem.float_value_unchecked(v.concrete).unwrap_or(f64::NAN);
        let term = match v.origin {
            Origin::Var(var) => Some(FloatTerm::Var(var)),
            Origin::DerivedFloat(t) => Some(t),
            _ => None,
        };
        SymFloat { concrete, term }
    }

    fn new_float(&mut self, f: SymFloat) -> Result<SymOop, AllocFault> {
        let oop = self.mem.instantiate_float(f.concrete).map_err(|_| AllocFault)?;
        let origin = match f.term {
            Some(t) => Origin::DerivedFloat(t),
            None => Origin::Const,
        };
        Ok(SymOop { concrete: oop, origin })
    }

    fn int_to_float(&mut self, n: SymInt) -> SymFloat {
        // Int→float conversion has no solver theory; concretized.
        SymFloat { concrete: n.concrete as f64, term: None }
    }

    fn float_to_int(&mut self, f: SymFloat) -> SymInt {
        SymInt { concrete: f.concrete.trunc() as i64, expr: None }
    }

    fn float_fits_small_int(&mut self, f: SymFloat) -> bool {
        f.concrete.is_finite()
            && f.concrete.trunc() >= igjit_heap::SMALL_INT_MIN as f64
            && f.concrete.trunc() <= igjit_heap::SMALL_INT_MAX as f64
    }

    fn int_add(&mut self, a: SymInt, b: SymInt) -> SymInt {
        let concrete = a.concrete + b.concrete;
        let expr = if a.expr.is_some() || b.expr.is_some() {
            let e = self.expr_of(a).plus(&self.expr_of(b));
            Some(self.intern(e))
        } else {
            None
        };
        SymInt { concrete, expr }
    }

    fn int_sub(&mut self, a: SymInt, b: SymInt) -> SymInt {
        let concrete = a.concrete - b.concrete;
        let expr = if a.expr.is_some() || b.expr.is_some() {
            let e = self.expr_of(a).minus(&self.expr_of(b));
            Some(self.intern(e))
        } else {
            None
        };
        SymInt { concrete, expr }
    }

    fn int_mul(&mut self, a: SymInt, b: SymInt) -> SymInt {
        let concrete = a.concrete.saturating_mul(b.concrete);
        // Linear only when one side is a constant.
        let expr = match (a.expr, b.expr) {
            (Some(_), None) => {
                let e = self.expr_of(a);
                let scaled = LinExpr {
                    constant: e.constant * b.concrete,
                    terms: e.terms.iter().map(|&(c, v)| (c * b.concrete, v)).collect(),
                };
                Some(self.intern(scaled))
            }
            (None, Some(_)) => {
                let e = self.expr_of(b);
                let scaled = LinExpr {
                    constant: e.constant * a.concrete,
                    terms: e.terms.iter().map(|&(c, v)| (c * a.concrete, v)).collect(),
                };
                Some(self.intern(scaled))
            }
            _ => None, // nonlinear: concretized
        };
        SymInt { concrete, expr }
    }

    fn int_div_floor(&mut self, a: SymInt, b: SymInt) -> SymInt {
        // Floored (Smalltalk `//`), matching the concrete context.
        let q = a.concrete / b.concrete;
        let q = if a.concrete % b.concrete != 0 && (a.concrete ^ b.concrete) < 0 {
            q - 1
        } else {
            q
        };
        SymInt { concrete: q, expr: None }
    }
    fn int_div_trunc(&mut self, a: SymInt, b: SymInt) -> SymInt {
        SymInt { concrete: a.concrete / b.concrete, expr: None }
    }
    fn int_mod_floor(&mut self, a: SymInt, b: SymInt) -> SymInt {
        let r = a.concrete % b.concrete;
        let r = if r != 0 && (r ^ b.concrete) < 0 { r + b.concrete } else { r };
        SymInt { concrete: r, expr: None }
    }
    fn int_bit_and(&mut self, a: SymInt, b: SymInt) -> SymInt {
        // No bitwise theory (§4.3): concretized.
        SymInt { concrete: a.concrete & b.concrete, expr: None }
    }
    fn int_bit_or(&mut self, a: SymInt, b: SymInt) -> SymInt {
        SymInt { concrete: a.concrete | b.concrete, expr: None }
    }
    fn int_bit_xor(&mut self, a: SymInt, b: SymInt) -> SymInt {
        SymInt { concrete: a.concrete ^ b.concrete, expr: None }
    }
    fn int_shift(&mut self, a: SymInt, b: SymInt) -> SymInt {
        let concrete = if b.concrete >= 0 {
            a.concrete.checked_shl(b.concrete.min(62) as u32).unwrap_or(0)
        } else {
            a.concrete >> (-b.concrete).min(62)
        };
        SymInt { concrete, expr: None }
    }

    fn float_add(&mut self, a: SymFloat, b: SymFloat) -> SymFloat {
        SymFloat { concrete: a.concrete + b.concrete, term: None }
    }
    fn float_sub(&mut self, a: SymFloat, b: SymFloat) -> SymFloat {
        SymFloat { concrete: a.concrete - b.concrete, term: None }
    }
    fn float_mul(&mut self, a: SymFloat, b: SymFloat) -> SymFloat {
        SymFloat { concrete: a.concrete * b.concrete, term: None }
    }
    fn float_div(&mut self, a: SymFloat, b: SymFloat) -> SymFloat {
        SymFloat { concrete: a.concrete / b.concrete, term: None }
    }
    fn float_fraction_part(&mut self, f: SymFloat) -> SymFloat {
        SymFloat { concrete: f.concrete.fract(), term: None }
    }
    fn float_exponent(&mut self, f: SymFloat) -> SymInt {
        let e = if f.concrete == 0.0 || !f.concrete.is_finite() {
            0
        } else {
            f.concrete.abs().log2().floor() as i64
        };
        SymInt { concrete: e, expr: None }
    }
    fn int_bits_to_f32(&mut self, bits: SymInt) -> SymFloat {
        SymFloat { concrete: f64::from(f32::from_bits(bits.concrete as u32)), term: None }
    }
    fn int_bits_to_f64(&mut self, lo: SymInt, hi: SymInt) -> SymFloat {
        let bits = (lo.concrete as u32 as u64) | ((hi.concrete as u32 as u64) << 32);
        SymFloat { concrete: f64::from_bits(bits), term: None }
    }
    fn float_to_bits(&mut self, f: SymFloat, single: bool) -> (SymInt, SymInt) {
        let (lo, hi) = if single {
            (i64::from((f.concrete as f32).to_bits()), 0)
        } else {
            let bits = f.concrete.to_bits();
            (i64::from(bits as u32), i64::from((bits >> 32) as u32))
        };
        (SymInt { concrete: lo, expr: None }, SymInt { concrete: hi, expr: None })
    }

    fn slot_count(&mut self, v: SymOop) -> Result<SymInt, MemFault> {
        let has_slots = self
            .mem
            .format_of(v.concrete)
            .map(|f| f.has_pointer_slots() || f == ObjectFormat::ZeroSized)
            .unwrap_or(false);
        if let Some(var) = v.as_var() {
            let set = pointer_slot_kinds().union(KindSet::of(&[
                igjit_solver::Kind::Nil,
                igjit_solver::Kind::True,
                igjit_solver::Kind::False,
            ]));
            self.record_observed(has_slots, Constraint::Kind { var, allowed: set });
        }
        if !has_slots {
            return Err(MemFault);
        }
        let size = self.mem.element_count(v.concrete).map_err(|_| MemFault)?;
        let expr = v
            .as_var()
            .map(|var| {
                let sv = self.state.size_var_of(var);
                self.intern(LinExpr::var(sv))
            });
        Ok(SymInt { concrete: i64::from(size), expr })
    }

    fn byte_count(&mut self, v: SymOop) -> Result<SymInt, MemFault> {
        let is_bytes = self.mem.format_of(v.concrete).map(|f| f.is_bytes()).unwrap_or(false);
        if let Some(var) = v.as_var() {
            self.record_observed(is_bytes, Constraint::Kind { var, allowed: byte_kinds() });
        }
        if !is_bytes {
            return Err(MemFault);
        }
        let size = self.mem.byte_count(v.concrete).map_err(|_| MemFault)?;
        let expr = v.as_var().map(|var| {
            let sv = self.state.size_var_of(var);
            self.intern(LinExpr::var(sv))
        });
        Ok(SymInt { concrete: i64::from(size), expr })
    }

    fn element_count(&mut self, v: SymOop) -> Result<SymInt, MemFault> {
        let size = self.mem.element_count(v.concrete).map_err(|_| MemFault)?;
        let expr = v.as_var().map(|var| {
            let sv = self.state.size_var_of(var);
            self.intern(LinExpr::var(sv))
        });
        Ok(SymInt { concrete: i64::from(size), expr })
    }

    fn fetch_slot(&mut self, v: SymOop, idx: SymInt) -> Result<SymOop, MemFault> {
        let (var, _idx_expr) = self.slot_access(v, idx)?;
        let concrete = self
            .mem
            .fetch_pointer(v.concrete, idx.concrete as u32)
            .map_err(|_| MemFault)?;
        if let Some(var) = var {
            if let Some(written) = self.overlay_get(var, idx.concrete) {
                return Ok(written);
            }
            if let Some(slot_var) = self.state.slot_var_of(var, idx.concrete) {
                return Ok(SymOop::var(concrete, slot_var));
            }
        }
        Ok(SymOop::constant(concrete))
    }

    fn store_slot(&mut self, v: SymOop, idx: SymInt, value: SymOop) -> Result<(), MemFault> {
        let (var, _idx_expr) = self.slot_access(v, idx)?;
        self.mem
            .store_pointer(v.concrete, idx.concrete as u32, value.concrete)
            .map_err(|_| MemFault)?;
        if let Some(var) = var {
            self.slot_overlay.push(((var, idx.concrete), value));
        }
        Ok(())
    }

    fn fetch_byte(&mut self, v: SymOop, idx: SymInt) -> Result<SymInt, MemFault> {
        self.element_access(v, idx, true)?;
        let b = self
            .mem
            .fetch_byte(v.concrete, idx.concrete as u32)
            .map_err(|_| MemFault)?;
        Ok(SymInt { concrete: i64::from(b), expr: None })
    }

    fn store_byte(&mut self, v: SymOop, idx: SymInt, value: SymInt) -> Result<(), MemFault> {
        self.element_access(v, idx, true)?;
        self.mem
            .store_byte(v.concrete, idx.concrete as u32, value.concrete as u8)
            .map_err(|_| MemFault)
    }

    fn fetch_word(&mut self, v: SymOop, idx: SymInt) -> Result<SymInt, MemFault> {
        self.element_access(v, idx, false)?;
        let w = self
            .mem
            .fetch_word(v.concrete, idx.concrete as u32)
            .map_err(|_| MemFault)?;
        Ok(SymInt { concrete: i64::from(w), expr: None })
    }

    fn store_word(&mut self, v: SymOop, idx: SymInt, value: SymInt) -> Result<(), MemFault> {
        self.element_access(v, idx, false)?;
        self.mem
            .store_word(v.concrete, idx.concrete as u32, value.concrete as u32)
            .map_err(|_| MemFault)
    }

    fn identity_hash(&mut self, v: SymOop) -> Result<SymInt, MemFault> {
        if v.concrete.is_small_int() {
            return Ok(SymInt { concrete: v.concrete.small_int_value(), expr: None });
        }
        let h = self.mem.identity_hash(v.concrete).map_err(|_| MemFault)?;
        Ok(SymInt { concrete: i64::from(h), expr: None })
    }

    fn class_index_as_int(&mut self, v: SymOop) -> SymInt {
        let idx = self.mem.class_index_of(v.concrete);
        // Pin the kind so the recorded path is replayable.
        if let (Some(var), Some(kind)) = (v.as_var(), kind_for_class(idx)) {
            self.record(Constraint::Kind { var, allowed: KindSet::only(kind) });
        }
        SymInt { concrete: i64::from(idx.value()), expr: None }
    }

    fn allocate(
        &mut self,
        class: ClassIndex,
        format: ObjectFormat,
        count: SymInt,
    ) -> Result<SymOop, AllocFault> {
        let count = u32::try_from(count.concrete).map_err(|_| AllocFault)?;
        if count > 1 << 20 {
            return Err(AllocFault);
        }
        let oop = self.mem.allocate(class, format, count).map_err(|_| AllocFault)?;
        Ok(SymOop::constant(oop))
    }

    fn external_address_of(&mut self, v: SymOop) -> Result<SymInt, MemFault> {
        let addr = self.mem.external_address_of(v.concrete).map_err(|_| MemFault)?;
        let expr = v.as_var().map(|var| self.intern(LinExpr::var(var)));
        Ok(SymInt { concrete: i64::from(addr), expr })
    }

    fn new_external_address(&mut self, addr: SymInt) -> Result<SymOop, AllocFault> {
        let a = u32::try_from(addr.concrete).map_err(|_| AllocFault)?;
        let oop = self.mem.instantiate_external_address(a).map_err(|_| AllocFault)?;
        Ok(SymOop::constant(oop))
    }

    fn ext_read(&mut self, addr: SymInt, width: u32, signed: bool) -> Result<SymInt, MemFault> {
        let len = self.mem.external().len() as i64;
        let e = self.expr_of(addr);
        let nonneg = addr.concrete >= 0;
        let fits = addr.concrete + i64::from(width) <= len;
        if addr.concrete < 0 {
            self.record_int_cmp(true, CmpOp::Lt, e, LinExpr::constant(0));
            return Err(MemFault);
        }
        self.record_int_cmp(nonneg, CmpOp::Ge, e.clone(), LinExpr::constant(0));
        self.record_int_cmp(fits, CmpOp::Le, e.offset(i64::from(width)), LinExpr::constant(len));
        if !fits {
            return Err(MemFault);
        }
        let raw = if signed {
            self.mem
                .external()
                .read_int(addr.concrete as u32, width)
                .map(i64::from)
                .map_err(|_| MemFault)?
        } else {
            self.mem
                .external()
                .read_uint(addr.concrete as u32, width)
                .map(i64::from)
                .map_err(|_| MemFault)?
        };
        Ok(SymInt { concrete: raw, expr: None })
    }

    fn ext_write(&mut self, addr: SymInt, width: u32, value: SymInt) -> Result<(), MemFault> {
        let len = self.mem.external().len() as i64;
        let e = self.expr_of(addr);
        let nonneg = addr.concrete >= 0;
        let fits = addr.concrete + i64::from(width) <= len;
        if addr.concrete < 0 {
            self.record_int_cmp(true, CmpOp::Lt, e, LinExpr::constant(0));
            return Err(MemFault);
        }
        self.record_int_cmp(nonneg, CmpOp::Ge, e.clone(), LinExpr::constant(0));
        self.record_int_cmp(fits, CmpOp::Le, e.offset(i64::from(width)), LinExpr::constant(len));
        if !fits {
            return Err(MemFault);
        }
        self.mem
            .external_mut()
            .write_uint(addr.concrete as u32, width, value.concrete as u32)
            .map_err(|_| MemFault)
    }

    fn stack_value(&mut self, frame: &Frame<SymOop>, depth: usize) -> Result<SymOop, MemFault> {
        let available = frame.depth() > depth;
        // Express the requirement against the ORIGINAL stack size: the
        // run may have pushed/popped since materialization.
        let delta = frame.depth() as i64 - self.initial_stack_depth as i64;
        let orig_needed = depth as i64 + 1 - delta;
        if orig_needed > 0 {
            // Make sure the variable exists so growth can materialize it.
            self.state.stack_var_at((orig_needed - 1) as usize);
            let size = LinExpr::var(self.state.stack_size);
            let need = LinExpr::constant(orig_needed);
            self.record_int_cmp(available, CmpOp::Ge, size, need);
        }
        if available {
            Ok(frame.stack_at_depth(depth))
        } else {
            Err(MemFault)
        }
    }

    fn temp(&mut self, frame: &Frame<SymOop>, index: usize) -> Result<SymOop, MemFault> {
        let available = frame.temps.len() > index;
        self.state.temp_var_at(index);
        let count = LinExpr::var(self.state.temp_count);
        let need = LinExpr::constant(index as i64 + 1);
        self.record_int_cmp(available, CmpOp::Ge, count, need);
        if available {
            Ok(frame.temps[index])
        } else {
            Err(MemFault)
        }
    }

    fn set_temp(
        &mut self,
        frame: &mut Frame<SymOop>,
        index: usize,
        value: SymOop,
    ) -> Result<(), MemFault> {
        let available = frame.temps.len() > index;
        self.state.temp_var_at(index);
        let count = LinExpr::var(self.state.temp_count);
        let need = LinExpr::constant(index as i64 + 1);
        self.record_int_cmp(available, CmpOp::Ge, count, need);
        if available {
            frame.temps[index] = value;
            Ok(())
        } else {
            Err(MemFault)
        }
    }

    fn literal(&mut self, frame: &Frame<SymOop>, index: usize) -> Result<SymOop, MemFault> {
        let available = frame.method.literals.len() > index;
        self.state.literal_var_at(index);
        let count = LinExpr::var(self.state.literal_count);
        let need = LinExpr::constant(index as i64 + 1);
        self.record_int_cmp(available, CmpOp::Ge, count, need);
        if available {
            Ok(frame.method.literals[index])
        } else {
            Err(MemFault)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igjit_interp::MethodInfo;

    #[test]
    fn predicates_record_positive_facts() {
        let mut mem = ObjectMemory::new();
        let mut state = AbstractState::new();
        let rcvr = state.receiver;
        let oop = igjit_heap::Oop::from_small_int(5);
        let mut ctx = ConcolicContext::new(&mut mem, &mut state, 0);
        let v = SymOop::var(oop, rcvr);
        assert!(ctx.is_integer_object(v));
        assert_eq!(
            ctx.path(),
            &[Constraint::Kind { var: rcvr, allowed: KindSet::only(igjit_solver::Kind::SmallInt) }]
        );
    }

    #[test]
    fn negative_predicates_record_complements() {
        let mut mem = ObjectMemory::new();
        let arr = mem.instantiate_array(&[]).unwrap();
        let mut state = AbstractState::new();
        let rcvr = state.receiver;
        let mut ctx = ConcolicContext::new(&mut mem, &mut state, 0);
        let v = SymOop::var(arr, rcvr);
        assert!(!ctx.is_integer_object(v));
        match &ctx.path()[0] {
            Constraint::Kind { var, allowed } => {
                assert_eq!(*var, rcvr);
                assert!(!allowed.contains(igjit_solver::Kind::SmallInt));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stack_access_records_size_constraints() {
        let mut mem = ObjectMemory::new();
        let nil = mem.nil();
        let mut state = AbstractState::new();
        let size_var = state.stack_size;
        let mut ctx = ConcolicContext::new(&mut mem, &mut state, 0);
        let frame: Frame<SymOop> = Frame::new(SymOop::constant(nil), MethodInfo::empty());
        assert!(ctx.stack_value(&frame, 0).is_err());
        // operand_stack_size < 1, i.e. the Fig. 2 first column.
        match &ctx.path()[0] {
            Constraint::Int(CmpOp::Lt, l, r) => {
                assert_eq!(l.terms[0].1, size_var);
                assert_eq!(r.constant, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_builds_linear_expressions() {
        let mut mem = ObjectMemory::new();
        let mut state = AbstractState::new();
        let a_var = state.stack_var_at(0).unwrap();
        let b_var = state.stack_var_at(1).unwrap();
        let mut ctx = ConcolicContext::new(&mut mem, &mut state, 0);
        let a = ctx.integer_value_of(SymOop::var(igjit_heap::Oop::from_small_int(3), a_var));
        let b = ctx.integer_value_of(SymOop::var(igjit_heap::Oop::from_small_int(4), b_var));
        let sum = ctx.int_add(a, b);
        assert_eq!(sum.concrete, 7);
        assert!(ctx.is_integer_value(sum));
        // The recorded constraint mentions both variables.
        let mut vars = Vec::new();
        for c in ctx.path() {
            c.vars(&mut vars);
        }
        assert!(vars.contains(&a_var));
        assert!(vars.contains(&b_var));
    }

    #[test]
    fn duplicate_constraints_are_not_recorded_twice() {
        let mut mem = ObjectMemory::new();
        let mut state = AbstractState::new();
        let rcvr = state.receiver;
        let oop = igjit_heap::Oop::from_small_int(5);
        let mut ctx = ConcolicContext::new(&mut mem, &mut state, 0);
        let v = SymOop::var(oop, rcvr);
        ctx.is_integer_object(v);
        ctx.is_integer_object(v);
        assert_eq!(ctx.path().len(), 1);
    }

    #[test]
    fn slot_fetch_records_kind_and_bounds() {
        let mut mem = ObjectMemory::new();
        let arr = mem.instantiate_array(&[igjit_heap::Oop::from_small_int(9)]).unwrap();
        let mut state = AbstractState::new();
        let rcvr = state.receiver;
        let mut ctx = ConcolicContext::new(&mut mem, &mut state, 0);
        let v = SymOop::var(arr, rcvr);
        let idx = ctx.int_const(0);
        let got = ctx.fetch_slot(v, idx).unwrap();
        assert_eq!(got.concrete.small_int_value(), 9);
        assert!(got.as_var().is_some(), "fetched slots are tracked as input vars");
        // OOB records the negated bound and faults.
        let idx5 = ctx.int_const(5);
        assert!(ctx.fetch_slot(v, idx5).is_err());
    }

    #[test]
    fn store_overlay_shadows_slot_vars() {
        let mut mem = ObjectMemory::new();
        let arr = mem.instantiate_array(&[igjit_heap::Oop::from_small_int(1)]).unwrap();
        let mut state = AbstractState::new();
        let rcvr = state.receiver;
        let mut ctx = ConcolicContext::new(&mut mem, &mut state, 0);
        let v = SymOop::var(arr, rcvr);
        let idx = ctx.int_const(0);
        let newval = SymOop::constant(igjit_heap::Oop::from_small_int(42));
        ctx.store_slot(v, idx, newval).unwrap();
        let got = ctx.fetch_slot(v, idx).unwrap();
        assert_eq!(got, newval, "reads observe this run's writes, not slot vars");
    }
}
