//! Symbolic shadow values.
//!
//! Every value flowing through the concolically-executed interpreter
//! is a concrete value plus a description of *where it came from*:
//! an input variable, a derived integer expression, a derived float,
//! or a constant of the execution.

use igjit_heap::Oop;
use igjit_solver::{FloatTerm, VarId};

/// Index into the context's expression table (derived integer
/// expressions are interned there to keep values `Copy`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExprId(pub u32);

/// Provenance of a value.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Origin {
    /// Directly an input variable of the abstract frame.
    Var(VarId),
    /// Derived from inputs by linear integer arithmetic; the
    /// expression lives in the context's table.
    DerivedInt(ExprId),
    /// Derived float value.
    DerivedFloat(FloatTerm),
    /// A constant of this execution (canonical objects, allocation
    /// results, concretized arithmetic).
    Const,
}

/// A traced oop: concrete value + provenance.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SymOop {
    /// The concrete tagged value.
    pub concrete: Oop,
    /// Symbolic provenance.
    pub origin: Origin,
}

impl SymOop {
    /// A constant (untracked) oop.
    pub fn constant(concrete: Oop) -> SymOop {
        SymOop { concrete, origin: Origin::Const }
    }

    /// An input-variable oop.
    pub fn var(concrete: Oop, var: VarId) -> SymOop {
        SymOop { concrete, origin: Origin::Var(var) }
    }

    /// The input variable, if this value is one.
    pub fn as_var(self) -> Option<VarId> {
        match self.origin {
            Origin::Var(v) => Some(v),
            _ => None,
        }
    }
}

/// A traced untagged integer.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SymInt {
    /// Concrete value.
    pub concrete: i64,
    /// Expression over input variables; `None` means concretized
    /// (e.g. results of bitwise operations, §4.3).
    pub expr: Option<ExprId>,
}

/// A traced unboxed float.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SymFloat {
    /// Concrete value.
    pub concrete: f64,
    /// Float term over input variables; `None` means concretized.
    pub term: Option<FloatTerm>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let c = SymOop::constant(Oop::from_small_int(1));
        assert_eq!(c.origin, Origin::Const);
        assert_eq!(c.as_var(), None);
        let v = SymOop::var(Oop::from_small_int(2), VarId(3));
        assert_eq!(v.as_var(), Some(VarId(3)));
    }
}
