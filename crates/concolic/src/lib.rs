//! # igjit-concolic — concolic meta-interpretation of the interpreter
//!
//! This crate implements steps 1 of the paper's pipeline (Fig. 1):
//! *concolic exploration* of a VM instruction against the interpreter.
//!
//! The [`ConcolicContext`] implements
//! [`igjit_interp::VmContext`] with values that carry a **symbolic
//! shadow** next to their concrete part; running the *unmodified*
//! interpreter ([`igjit_interp::step`] / `run_native`) under this
//! context records the semantic path condition (§3.3) of the taken
//! path: `isSmallInteger(v)`, class tests, `operand_stack_size`
//! bounds, slot-count bounds and linear integer comparisons.
//!
//! The [`Explorer`] then drives the classic concolic loop (§2.3,
//! Fig. 2):
//!
//! 1. solve the current path-condition prefix with `igjit-solver`,
//! 2. **materialize** a concrete VM frame (and its object graph) from
//!    the model into a fresh heap,
//! 3. run the instruction, recording the actually-taken path and its
//!    **exit condition** (§3.4),
//! 4. negate the last not-yet-negated condition and iterate, growing
//!    the frame whenever an `InvalidFrame`/`InvalidMemoryAccess` exit
//!    asked for more operands or slots.
//!
//! Unlike textbook concolic testing, exploration does **not** stop on
//! a failing path — failure exits are first-class results, because the
//! differential tester needs them (§2.2).
//!
//! ## Example
//!
//! ```
//! use igjit_concolic::{Explorer, InstrUnderTest};
//! use igjit_bytecode::Instruction;
//!
//! let result = Explorer::new().explore(InstrUnderTest::Bytecode(Instruction::Add));
//! // Table 1 of the paper: the add bytecode has the int/int path, the
//! // overflow path, float paths, type-error send paths and the
//! // invalid-frame paths.
//! assert!(result.paths.len() >= 5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod explore;
mod family;
mod materialize;
mod probes;
mod state;
mod sym;
mod cache;
mod trace;

pub use cache::{CacheLookup, ExplorationCache, ExplorationKey};
pub use probes::{probe_models, probe_models_with_stats, DEFAULT_MAX_PROBES};
pub use explore::{CurationReason, ExplorationResult, ExploreError, Explorer, ExploredPath,
                  InstrUnderTest, ObjectDump, PathOutcome, ReplayStep, SendRecord};
pub use materialize::{materialize_base, materialize_frame, BaseImage, MaterializedFrame,
    WitnessError};
pub use state::{byte_kinds, class_for_kind, kind_for_class, pointer_slot_kinds, AbstractState,
                ObjShape, VarRole};
pub use sym::{Origin, SymFloat, SymInt, SymOop};
pub use trace::ConcolicContext;

/// Compile-time source fingerprint (see `igjit-corpus`).
pub mod srcid;
