//! Sharing one concolic exploration across compiler targets.
//!
//! The campaign tests every instruction against four compilers on two
//! ISAs, but the exploration (solver loop + interpreter tracing) only
//! depends on the instruction itself — re-exploring per target is the
//! dominant redundant cost in the Figure 6 timings. The cache memoizes
//! [`ExplorationResult`]s behind an `Arc` so concurrent campaign
//! workers on any target reuse a single exploration.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::{Duration, Instant};

use crate::explore::{ExplorationResult, Explorer, InstrUnderTest};

/// Cache key: the instruction plus whether kind probing is enabled.
///
/// With probing enabled the cached entry also carries the
/// precomputed probe models (see
/// [`ExplorationResult::attach_probe_models`]), so the flag is part
/// of the entry's identity, not just a self-description.
pub type ExplorationKey = (InstrUnderTest, bool);

/// What a cache lookup produced.
pub struct CacheLookup {
    /// The (possibly shared) exploration.
    pub exploration: Arc<ExplorationResult>,
    /// Whether the exploration was served from the cache.
    pub hit: bool,
    /// Wall-clock spent exploring (zero on a hit).
    pub explore_time: Duration,
    /// Of [`CacheLookup::explore_time`], the slice spent materializing
    /// frames and concretely executing in the negation walk (zero on a
    /// hit — a shared entry's work is charged once, by the miss).
    pub walk_run: Duration,
    /// Of [`CacheLookup::explore_time`], the slice spent solving
    /// kind-probe hypotheses (zero on a hit, like `walk_run`).
    pub probe_solve: Duration,
}

/// A thread-safe memo of concolic explorations.
///
/// Lookups take a read lock; the exploration itself runs outside any
/// lock, so workers exploring *different* instructions never serialize
/// on each other. If two workers race on the same key, the first
/// insert wins and the loser's duplicate work is dropped — results are
/// deterministic either way because exploration is a pure function of
/// the key.
#[derive(Debug, Default)]
pub struct ExplorationCache {
    map: RwLock<HashMap<ExplorationKey, Arc<ExplorationResult>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    family_hits: AtomicUsize,
    family_fallbacks: AtomicUsize,
}

impl ExplorationCache {
    /// An empty cache.
    pub fn new() -> ExplorationCache {
        ExplorationCache::default()
    }

    /// Returns the cached exploration for `(instr, probes)` or runs
    /// `explorer` to produce (and remember) it.
    pub fn get_or_explore(
        &self,
        explorer: &Explorer,
        instr: InstrUnderTest,
        probes: bool,
    ) -> CacheLookup {
        self.get_or_explore_with(explorer, instr, probes, false)
    }

    /// [`ExplorationCache::get_or_explore`], optionally with
    /// family-shared exploration: on a miss for a bytecode whose
    /// [`igjit_bytecode::Instruction::family_rep`] differs from
    /// itself, the representative's exploration (cached with a replay
    /// log) is *replayed* for this member — verified step by step,
    /// with a fall back to a full exploration on any mismatch — so a
    /// whole immediate-parameterized family costs one negation-tree
    /// solve instead of one per opcode.
    pub fn get_or_explore_with(
        &self,
        explorer: &Explorer,
        instr: InstrUnderTest,
        probes: bool,
        family_share: bool,
    ) -> CacheLookup {
        let key = (instr, probes);
        if let Some(found) = self.read_map().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return CacheLookup {
                exploration: Arc::clone(found),
                hit: true,
                explore_time: Duration::ZERO,
                walk_run: Duration::ZERO,
                probe_solve: Duration::ZERO,
            };
        }
        let t0 = Instant::now();
        if family_share {
            if let InstrUnderTest::Bytecode(member) = instr {
                let rep = member.family_rep();
                if rep != member {
                    // A non-representative member: fetch (or build)
                    // the family's shared exploration, then replay it
                    // for this opcode. The recursion holds no locks.
                    let rep_lookup = self.get_or_explore_with(
                        explorer,
                        InstrUnderTest::Bytecode(rep),
                        probes,
                        true,
                    );
                    match crate::family::replay(explorer, &rep_lookup.exploration, member) {
                        Some(replayed) => {
                            self.family_hits.fetch_add(1, Ordering::Relaxed);
                            return self.insert(key, replayed, t0);
                        }
                        None => {
                            self.family_fallbacks.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
        // A native, a family representative, a member whose replay
        // failed verification, or sharing is off: explore in full.
        // Representatives record the replay log members will need
        // (one model clone per node, so only paid when sharing).
        let record = family_share
            && matches!(instr, InstrUnderTest::Bytecode(b) if b.family_rep() == b);
        let explored = self.explore_full(explorer, instr, probes, record);
        self.insert(key, explored, t0)
    }

    /// Runs a full exploration (the miss path), attaching probe
    /// models when probing is part of the key.
    fn explore_full(
        &self,
        explorer: &Explorer,
        instr: InstrUnderTest,
        probes: bool,
        record_replay: bool,
    ) -> ExplorationResult {
        let mut explorer = explorer.clone();
        explorer.record_replay = record_replay;
        let mut explored = explorer.explore(instr);
        if probes {
            // Probing depends only on the exploration, never on the
            // compiler target, so precompute it here: every target
            // (and every worker) sharing this entry reuses one probe
            // pass instead of re-solving the hypotheses per tier.
            explored.attach_probe_models(
                crate::probes::DEFAULT_MAX_PROBES,
                explorer.hash_cons,
                explorer.solver_trail,
            );
        }
        explored
    }

    /// Publishes a freshly-computed entry (first insert wins) and
    /// accounts the miss.
    fn insert(
        &self,
        key: ExplorationKey,
        explored: ExplorationResult,
        t0: Instant,
    ) -> CacheLookup {
        let walk_run = explored.walk_run;
        let probe_solve = explored.probe_solve;
        let explored = Arc::new(explored);
        let explore_time = t0.elapsed();
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.write_map();
        let entry = map.entry(key).or_insert_with(|| Arc::clone(&explored));
        CacheLookup { exploration: Arc::clone(entry), hit: false, explore_time, walk_run, probe_solve }
    }

    /// The map behind its read lock. A poisoned lock only means some
    /// other worker panicked *outside* a write (reads never leave the
    /// map half-updated, and the single write is an `entry` insert
    /// that cannot panic halfway), so the map is still coherent —
    /// recover it instead of cascading the panic across every
    /// campaign worker.
    fn read_map(
        &self,
    ) -> std::sync::RwLockReadGuard<'_, HashMap<ExplorationKey, Arc<ExplorationResult>>> {
        self.map.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// The map behind its write lock; see
    /// [`ExplorationCache::read_map`] on poison recovery.
    fn write_map(
        &self,
    ) -> std::sync::RwLockWriteGuard<'_, HashMap<ExplorationKey, Arc<ExplorationResult>>> {
        self.map.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Explorations served from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Explorations that had to run.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Misses served by verified family replay instead of a full
    /// exploration.
    pub fn family_hits(&self) -> usize {
        self.family_hits.load(Ordering::Relaxed)
    }

    /// Family replays that failed verification and fell back to a
    /// full exploration.
    pub fn family_fallbacks(&self) -> usize {
        self.family_fallbacks.load(Ordering::Relaxed)
    }

    /// Fraction of lookups served from the cache (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits();
        let m = self.misses();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Seeds an entry without touching the hit/miss counters (corpus
    /// warm-start: a preloaded entry becomes an ordinary hit when the
    /// sweep first asks for it). First insert wins, like
    /// [`get_or_explore_with`](Self::get_or_explore_with)'s publish.
    pub fn preload(&self, key: ExplorationKey, exploration: Arc<ExplorationResult>) {
        self.write_map().entry(key).or_insert(exploration);
    }

    /// All entries, for corpus write-back. Order is unspecified (the
    /// corpus encoder canonicalizes by key).
    pub fn snapshot(&self) -> Vec<(ExplorationKey, Arc<ExplorationResult>)> {
        self.read_map().iter().map(|(k, v)| (*k, Arc::clone(v))).collect()
    }

    /// Number of distinct explorations held.
    pub fn len(&self) -> usize {
        self.read_map().len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and resets the counters.
    pub fn clear(&self) {
        self.write_map().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.family_hits.store(0, Ordering::Relaxed);
        self.family_fallbacks.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igjit_bytecode::Instruction;

    #[test]
    fn second_lookup_hits_and_shares() {
        let cache = ExplorationCache::new();
        let explorer = Explorer::new();
        let instr = InstrUnderTest::Bytecode(Instruction::PushOne);
        let first = cache.get_or_explore(&explorer, instr, false);
        assert!(!first.hit);
        assert!(first.explore_time > Duration::ZERO);
        let second = cache.get_or_explore(&explorer, instr, false);
        assert!(second.hit);
        assert_eq!(second.explore_time, Duration::ZERO);
        assert!(Arc::ptr_eq(&first.exploration, &second.exploration));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn probes_flag_is_part_of_the_key() {
        let cache = ExplorationCache::new();
        let explorer = Explorer::new();
        let instr = InstrUnderTest::Bytecode(Instruction::Pop);
        assert!(!cache.get_or_explore(&explorer, instr, false).hit);
        assert!(!cache.get_or_explore(&explorer, instr, true).hit);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn family_members_replay_their_representative() {
        let cache = ExplorationCache::new();
        let explorer = Explorer::new();
        // Two members of the short-jump-true family: the first miss
        // explores the representative (plus the member itself as a
        // replay), the second only replays.
        let a = cache.get_or_explore_with(
            &explorer,
            InstrUnderTest::Bytecode(Instruction::ShortJumpTrue(4)),
            false,
            true,
        );
        let b = cache.get_or_explore_with(
            &explorer,
            InstrUnderTest::Bytecode(Instruction::ShortJumpTrue(7)),
            false,
            true,
        );
        assert_eq!(cache.family_hits(), 2);
        assert_eq!(cache.family_fallbacks(), 0);
        // Members keep their own outcome payloads.
        let displacement_of = |l: &CacheLookup| {
            l.exploration
                .paths
                .iter()
                .find_map(|p| match p.outcome {
                    crate::PathOutcome::Jump { displacement } => Some(displacement),
                    _ => None,
                })
                .expect("jump path")
        };
        assert_eq!(displacement_of(&a), 4);
        assert_eq!(displacement_of(&b), 7);
        // …and identical path structure to a from-scratch exploration.
        let fresh = explorer.explore(InstrUnderTest::Bytecode(Instruction::ShortJumpTrue(7)));
        let digest = |r: &crate::ExplorationResult| {
            r.paths
                .iter()
                .map(|p| format!("{:?}|{:?}|{:?}", p.constraints, p.outcome, p.output_stack))
                .collect::<Vec<_>>()
        };
        assert_eq!(digest(&b.exploration), digest(&fresh));
        assert_eq!(b.exploration.iterations, fresh.iterations);
    }

    #[test]
    fn family_sharing_collapses_constant_pushes() {
        let cache = ExplorationCache::new();
        let explorer = Explorer::new();
        for i in [
            Instruction::PushTrue,
            Instruction::PushFalse,
            Instruction::PushNil,
            Instruction::PushZero,
            Instruction::PushOne,
            Instruction::PushMinusOne,
            Instruction::PushTwo,
        ] {
            let l = cache.get_or_explore_with(&explorer, InstrUnderTest::Bytecode(i), false, true);
            assert_eq!(l.exploration.paths.len(), 1, "{i:?}");
            // Each member pushes *its own* constant.
            let top = l.exploration.paths[0].output_stack[0];
            let fresh = explorer.explore(InstrUnderTest::Bytecode(i));
            assert_eq!(top, fresh.paths[0].output_stack[0], "{i:?}");
        }
        assert_eq!(cache.family_hits(), 6, "one rep exploration, six replays");
        assert_eq!(cache.family_fallbacks(), 0);
    }

    #[test]
    fn concurrent_lookups_converge_on_one_entry() {
        let cache = ExplorationCache::new();
        let instr = InstrUnderTest::Bytecode(Instruction::Add);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let explorer = Explorer::new();
                    cache.get_or_explore(&explorer, instr, false)
                });
            }
        });
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits() + cache.misses(), 4);
    }
}
