//! Sharing one concolic exploration across compiler targets.
//!
//! The campaign tests every instruction against four compilers on two
//! ISAs, but the exploration (solver loop + interpreter tracing) only
//! depends on the instruction itself — re-exploring per target is the
//! dominant redundant cost in the Figure 6 timings. The cache memoizes
//! [`ExplorationResult`]s behind an `Arc` so concurrent campaign
//! workers on any target reuse a single exploration.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use crate::explore::{ExplorationResult, Explorer, InstrUnderTest};

/// Cache key: the instruction plus whether kind probing is enabled.
///
/// With probing enabled the cached entry also carries the
/// precomputed probe models (see
/// [`ExplorationResult::attach_probe_models`]), so the flag is part
/// of the entry's identity, not just a self-description.
pub type ExplorationKey = (InstrUnderTest, bool);

/// What a cache lookup produced.
pub struct CacheLookup {
    /// The (possibly shared) exploration.
    pub exploration: Arc<ExplorationResult>,
    /// Whether the exploration was served from the cache.
    pub hit: bool,
    /// Wall-clock spent exploring (zero on a hit).
    pub explore_time: Duration,
}

/// A thread-safe memo of concolic explorations.
///
/// Lookups take a read lock; the exploration itself runs outside any
/// lock, so workers exploring *different* instructions never serialize
/// on each other. If two workers race on the same key, the first
/// insert wins and the loser's duplicate work is dropped — results are
/// deterministic either way because exploration is a pure function of
/// the key.
#[derive(Debug, Default)]
pub struct ExplorationCache {
    map: RwLock<HashMap<ExplorationKey, Arc<ExplorationResult>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl ExplorationCache {
    /// An empty cache.
    pub fn new() -> ExplorationCache {
        ExplorationCache::default()
    }

    /// Returns the cached exploration for `(instr, probes)` or runs
    /// `explorer` to produce (and remember) it.
    pub fn get_or_explore(
        &self,
        explorer: &Explorer,
        instr: InstrUnderTest,
        probes: bool,
    ) -> CacheLookup {
        let key = (instr, probes);
        if let Some(found) = self.map.read().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return CacheLookup {
                exploration: Arc::clone(found),
                hit: true,
                explore_time: Duration::ZERO,
            };
        }
        let t0 = Instant::now();
        let mut explored = explorer.explore(instr);
        if probes {
            // Probing depends only on the exploration, never on the
            // compiler target, so precompute it here: every target
            // (and every worker) sharing this entry reuses one probe
            // pass instead of re-solving the hypotheses per tier.
            explored.attach_probe_models(crate::probes::DEFAULT_MAX_PROBES);
        }
        let explored = Arc::new(explored);
        let explore_time = t0.elapsed();
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.write().expect("cache lock");
        let entry = map.entry(key).or_insert_with(|| Arc::clone(&explored));
        CacheLookup { exploration: Arc::clone(entry), hit: false, explore_time }
    }

    /// Explorations served from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Explorations that had to run.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups served from the cache (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits();
        let m = self.misses();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Number of distinct explorations held.
    pub fn len(&self) -> usize {
        self.map.read().expect("cache lock").len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and resets the counters.
    pub fn clear(&self) {
        self.map.write().expect("cache lock").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igjit_bytecode::Instruction;

    #[test]
    fn second_lookup_hits_and_shares() {
        let cache = ExplorationCache::new();
        let explorer = Explorer::new();
        let instr = InstrUnderTest::Bytecode(Instruction::PushOne);
        let first = cache.get_or_explore(&explorer, instr, false);
        assert!(!first.hit);
        assert!(first.explore_time > Duration::ZERO);
        let second = cache.get_or_explore(&explorer, instr, false);
        assert!(second.hit);
        assert_eq!(second.explore_time, Duration::ZERO);
        assert!(Arc::ptr_eq(&first.exploration, &second.exploration));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn probes_flag_is_part_of_the_key() {
        let cache = ExplorationCache::new();
        let explorer = Explorer::new();
        let instr = InstrUnderTest::Bytecode(Instruction::Pop);
        assert!(!cache.get_or_explore(&explorer, instr, false).hit);
        assert!(!cache.get_or_explore(&explorer, instr, true).hit);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_lookups_converge_on_one_entry() {
        let cache = ExplorationCache::new();
        let instr = InstrUnderTest::Bytecode(Instruction::Add);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let explorer = Explorer::new();
                    cache.get_or_explore(&explorer, instr, false)
                });
            }
        });
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits() + cache.misses(), 4);
    }
}
