//! Kind probing: extra models for under-constrained paths.
//!
//! Concolic exploration only generates inputs the *interpreter's*
//! branches constrain. An instruction whose interpreter forgot a type
//! check (Listing 5) records no constraint on that operand, so its
//! paths would only ever be exercised with the solver's default
//! (SmallInteger) inputs — and the missing check would stay invisible.
//!
//! Probing closes the gap: for each path we re-solve the recorded
//! path condition under additional kind hypotheses on the *input
//! frame* variables (receiver and shallow stack operands). Every
//! satisfiable hypothesis yields one more concrete frame that, by
//! construction, drives the interpreter down the *same* recorded path
//! with a differently-typed operand.

use crate::{AbstractState, ExploredPath};
use igjit_solver::{
    CmpOp, Constraint, Kind, KindSet, LinExpr, Model, PreparedConstraint, Session, SessionStats,
    TrailStats, VarId,
};

/// Kinds tried for each probed variable.
const PROBE_KINDS: [Kind; 3] = [Kind::Float, Kind::Array, Kind::ExternalAddress];

/// Probe budget used by the campaign driver (and by
/// [`ExplorationResult::attach_probe_models`] when the exploration
/// cache precomputes probe models).
///
/// [`ExplorationResult::attach_probe_models`]: crate::ExplorationResult::attach_probe_models
pub const DEFAULT_MAX_PROBES: usize = 16;

/// The kinds `var` may take under the path condition, by intersecting
/// every top-level (and conjunctive) kind constraint. A sound
/// over-approximation: the solver only ever narrows it further, so a
/// probe kind outside this set is certainly unsatisfiable and its
/// solve can be skipped. `Or` branches are ignored (they do not all
/// hold), keeping the estimate conservative.
fn static_kinds(constraints: &[Constraint], var: VarId) -> KindSet {
    fn narrow(c: &Constraint, var: VarId, acc: &mut KindSet) {
        match c {
            Constraint::Kind { var: v, allowed } if *v == var => {
                *acc = acc.intersect(*allowed);
            }
            Constraint::And(cs) => {
                for c in cs {
                    narrow(c, var, acc);
                }
            }
            _ => {}
        }
    }
    let mut acc = KindSet::ANY;
    for c in constraints {
        narrow(c, var, &mut acc);
    }
    acc
}

/// [`probe_models`], also reporting the incremental-solver work
/// counters and trail-mode counters (for the campaign metrics).
/// `solver_trail` selects the session's scope mechanism
/// (`IGJIT_SOLVER_TRAIL`); models and stats are pinned identical
/// either way.
pub fn probe_models_with_stats(
    state: &AbstractState,
    path: &ExploredPath,
    max_probes: usize,
    solver_trail: bool,
) -> (Vec<Model>, SessionStats, TrailStats) {
    let mut session = Session::new();
    session.set_reuse_models(true);
    session.set_trail(solver_trail);
    let plan = ProbePlan::new(state);
    let models = probe_path(&mut session, state, &plan, path, max_probes);
    (models, session.stats(), session.trail_stats())
}

/// The candidate hypotheses for one exploration, built once and tried
/// against every curated path.
///
/// Hypothesis constraints depend only on the [`AbstractState`] (which
/// variables form the input frame, their shapes) — never on the path —
/// so a probe sweep over a few thousand paths can borrow the same
/// constraint trees instead of rebuilding ~a dozen of them per path.
/// Which hypotheses are *tried* still varies per path (a path whose
/// condition pins an operand's kind skips the contradicting probes);
/// that filter stays in [`probe_path`].
pub(crate) struct ProbePlan {
    /// Receiver plus up to three shallow stack operands, in probe order.
    probe_vars: Vec<VarId>,
    /// Per probe var: one hypothesis per entry of [`PROBE_KINDS`].
    kind_probes: Vec<[(Kind, PreparedConstraint); 3]>,
    /// Per probe var: the strictly-negative SmallInteger hypothesis.
    sign_probes: Vec<PreparedConstraint>,
    /// Boundary-value pairs over the two shallowest operands.
    pair_probes: Option<(VarId, VarId, [PreparedConstraint; 3])>,
}

impl ProbePlan {
    pub(crate) fn new(state: &AbstractState) -> ProbePlan {
        let mut probe_vars: Vec<VarId> = vec![state.receiver];
        probe_vars.extend(state.stack_vars.iter().take(3).copied());
        let kind_probes = probe_vars
            .iter()
            .map(|&var| {
                PROBE_KINDS.map(|kind| {
                    // When the variable has an element-count variable,
                    // give probe objects a couple of slots so unchecked
                    // body reads hit real (garbage) data instead of the
                    // heap's edge.
                    let hypothesis = match (kind, state.shape(var).size_var) {
                        (Kind::Array, Some(size_var)) => Constraint::And(vec![
                            Constraint::kind_is(var, kind),
                            Constraint::Int(
                                CmpOp::Ge,
                                LinExpr::var(size_var),
                                LinExpr::constant(2),
                            ),
                        ]),
                        _ => Constraint::kind_is(var, kind),
                    };
                    (kind, PreparedConstraint::new(hypothesis))
                })
            })
            .collect();
        let sign_probes = probe_vars
            .iter()
            .map(|&var| {
                PreparedConstraint::new(Constraint::And(vec![
                    Constraint::kind_is(var, Kind::SmallInt),
                    Constraint::Int(CmpOp::Lt, LinExpr::var(var), LinExpr::constant(-1)),
                ]))
            })
            .collect();
        let pair_probes = (state.stack_vars.len() >= 2).then(|| {
            let (top, below) = (state.stack_vars[0], state.stack_vars[1]);
            let pairs = [(-7i64, 3i64), (-7, -3), (7, -3)].map(|(rcvr_val, arg_val)| {
                PreparedConstraint::new(Constraint::And(vec![
                    Constraint::kind_is(below, Kind::SmallInt),
                    Constraint::kind_is(top, Kind::SmallInt),
                    Constraint::Int(
                        CmpOp::Eq,
                        LinExpr::var(below),
                        LinExpr::constant(rcvr_val),
                    ),
                    Constraint::Int(CmpOp::Eq, LinExpr::var(top), LinExpr::constant(arg_val)),
                ]))
            });
            (top, below, pairs)
        });
        ProbePlan { probe_vars, kind_probes, sign_probes, pair_probes }
    }
}

/// Probes one path through a caller-provided session whose current
/// scope holds no constraints yet. The path condition is asserted
/// into that scope, so batching callers wrap each call in push/pop
/// (plus [`Session::clear_cached_model`]) and pay variable sync and
/// constraint normalization once per exploration instead of once per
/// path — returning, by the session determinism contract, exactly
/// what the fresh-session wrapper above returns.
///
/// Model reuse is safe here: a revalidated model satisfies the path
/// condition *and* the hypothesis, so it drives the interpreter down
/// the same recorded path with the hypothesized operand kind — the
/// only scenario reuse can produce is a model an earlier hypothesis
/// already generated, and duplicate models yield duplicate verdicts
/// that the cause sets dedup.
pub(crate) fn probe_path(
    session: &mut Session,
    state: &AbstractState,
    plan: &ProbePlan,
    path: &ExploredPath,
    max_probes: usize,
) -> Vec<Model> {
    let mut models = vec![path.model.clone()];
    // The path condition is shared by every hypothesis: assert it once
    // in the enclosing scope, then push/pop one scope per hypothesis
    // so each solve reuses the path's propagation state.
    session.sync_vars(state.specs());
    for c in &path.constraints {
        session.assert(c.clone());
    }
    // Engine v8: the hypotheses are sibling scopes over the shared
    // path prefix, so each is one batched `solve_under` — observably
    // identical to push/assert/solve/pop (the solver's equivalence
    // tests pin this) but with one store clone per hypothesis instead
    // of two, which is most of the probe stage's former cost.
    let try_hypothesis =
        |session: &mut Session, models: &mut Vec<Model>, hypothesis: &PreparedConstraint| {
            if models.len() > max_probes {
                return;
            }
            if let Ok(m) = session.solve_under_prepared(hypothesis) {
                models.push(m);
            }
        };
    for (vi, &var) in plan.probe_vars.iter().enumerate() {
        // Skip kinds the path condition itself rules out: those
        // hypotheses are unsatisfiable before the solver ever runs.
        let allowed = static_kinds(&path.constraints, var);
        for (kind, hypothesis) in &plan.kind_probes[vi] {
            if path.model.kind(var) == *kind || !allowed.contains(*kind) {
                continue;
            }
            try_hypothesis(&mut *session, &mut models, hypothesis);
        }
        // Sign probe: a strictly negative SmallInteger value.
        if path.model.kind(var) == Kind::SmallInt && path.model.int_value(var) >= 0 {
            try_hypothesis(&mut *session, &mut models, &plan.sign_probes[vi]);
        }
    }
    // Boundary-value pair probes over the two shallowest operands
    // (receiver/argument of binary operations). Rounding and shift
    // defects need *combinations* — a negative dividend with an
    // inexact positive divisor, say — that no single linear
    // hypothesis can force, because the interpreter concretizes
    // division and shifts (§4.3: no such solver theory).
    if let Some((top, below, pairs)) = &plan.pair_probes {
        let pair_possible = static_kinds(&path.constraints, *top).contains(Kind::SmallInt)
            && static_kinds(&path.constraints, *below).contains(Kind::SmallInt);
        if pair_possible {
            for hypothesis in pairs {
                try_hypothesis(&mut *session, &mut models, hypothesis);
            }
        }
    }
    models
}

/// Generates the base model plus satisfiable probe variants for
/// `path`: kind hypotheses (a differently-typed operand on the same
/// path) and sign hypotheses (a negative SmallInteger operand — how
/// the `quo:` rounding and unsigned-shift defects surface, since the
/// concretized arithmetic records no sign constraints). The base model
/// is always first.
pub fn probe_models(state: &AbstractState, path: &ExploredPath, max_probes: usize) -> Vec<Model> {
    probe_models_with_stats(state, path, max_probes, true).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Explorer, InstrUnderTest, PathOutcome};
    use igjit_interp::NativeMethodId;
    use igjit_solver::solve;

    #[test]
    fn as_float_probes_produce_pointer_receivers() {
        // primitiveAsFloat's success path has no receiver constraint;
        // probing must produce at least one non-SmallInt receiver.
        let r = Explorer::new().explore(InstrUnderTest::Native(NativeMethodId(40)));
        let success = r
            .paths
            .iter()
            .find(|p| matches!(p.outcome, PathOutcome::Success))
            .expect("asFloat has a success path");
        let models = probe_models(&r.state, success, 8);
        assert!(models.len() > 1, "probes found");
        // The first probe var is the receiver... but for natives the
        // receiver lives on the operand stack; check any probed model
        // assigns a non-SmallInt kind somewhere in the input frame.
        let mut saw_non_int = false;
        for m in &models[1..] {
            for &v in std::iter::once(&r.state.receiver).chain(r.state.stack_vars.iter()) {
                if m.kind(v) != igjit_solver::Kind::SmallInt {
                    saw_non_int = true;
                }
            }
        }
        assert!(saw_non_int);
    }

    #[test]
    fn probes_respect_path_constraints() {
        // For a path that *requires* a SmallInt operand, probing that
        // operand is unsatisfiable and produces no variant with a
        // violated constraint.
        let r = Explorer::new().explore(InstrUnderTest::Native(NativeMethodId(1)));
        for path in r.curated_paths() {
            let models = probe_models(&r.state, path, 6);
            for m in &models {
                let problem = r.state.problem_with(&path.constraints);
                // Quick satisfiability sanity: the path constraints
                // must still be solvable (the model itself came from
                // them plus hypotheses).
                assert!(solve(&problem).is_ok());
                let _ = m;
            }
        }
    }

    #[test]
    fn base_model_comes_first() {
        let r = Explorer::new().explore(InstrUnderTest::Native(NativeMethodId(40)));
        let p = &r.paths[0];
        let models = probe_models(&r.state, p, 4);
        assert_eq!(models[0], p.model);
    }
}
