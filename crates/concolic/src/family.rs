//! Family-shared exploration: replaying a representative's negation
//! walk for another member of the same instruction family.
//!
//! The catalog's jump and push-constant groups differ only in an
//! immediate operand (a displacement, a pushed constant) that never
//! enters a path condition — their negation trees are isomorphic. So
//! instead of re-solving the whole tree per member (§2.3's dominant
//! cost), the exploration cache solves it **once** for the family's
//! representative ([`igjit_bytecode::Instruction::family_rep`]) with
//! [`crate::Explorer::record_replay`] on, and every other member
//! *replays* that walk: it re-executes its own instruction against the
//! representative's recorded solver models, in walk order, and keeps
//! its own outcome payloads and oracle outputs.
//!
//! The replay is **verified**, never trusted: each step checks that
//! the member's variable registry, recorded path condition, outcome
//! discriminant and unsupported-reason match the representative's
//! record, and the final abstract state must be identical. Any
//! mismatch makes [`replay`] return `None` and the caller falls back
//! to a full exploration — so a too-eager family grouping can only
//! cost time, not correctness.

use std::time::Duration;

use igjit_bytecode::Instruction;
use igjit_heap::ObjectMemory;
use igjit_interp::step;

use crate::explore::{
    convert_step, discriminant_of, snapshot_outputs, ExplorationResult, ExploredPath,
    Explorer, InstrUnderTest, PathOutcome,
};
use crate::materialize::materialize_frame;
use crate::state::AbstractState;
use igjit_solver::Constraint;

/// Replays `rep`'s recorded walk with `member`'s instruction.
/// Returns `None` (caller must explore from scratch) unless every
/// verification passes.
pub(crate) fn replay(
    explorer: &Explorer,
    rep: &ExplorationResult,
    member: Instruction,
) -> Option<ExplorationResult> {
    let log = rep.replay_log.as_ref()?;
    let replay_t = std::time::Instant::now();
    let mut state = AbstractState::new();
    let mut paths = Vec::new();
    for record in log {
        // The member must present exactly the variable registry the
        // representative had when this node's model was solved — the
        // model assigns one value per variable.
        if state.var_count() != record.model.len()
            || state.specs() != &rep.state.specs()[..state.var_count()]
        {
            return None;
        }
        let mut mem = ObjectMemory::new();
        let mat = materialize_frame(&mut state, &record.model, &mut mem);
        let mut frame = mat.frame.clone();
        let (outcome, path) = {
            let mut ctx = crate::trace::ConcolicContext::new(&mut mem, &mut state, frame.depth());
            let outcome = convert_step(step(&mut ctx, &mut frame, member));
            (outcome, ctx.take_path())
        };
        let path: Vec<Constraint> = path.into_iter().take(explorer.max_path_len).collect();
        // The member's recorded path condition and exit class must be
        // the representative's — that is what makes the rest of the
        // walk (negation order, dedup, budget) transfer verbatim.
        if path != record.constraints || discriminant_of(&outcome) != record.disc {
            return None;
        }
        if let PathOutcome::Unsupported { reason } = outcome {
            if record.unsupported != Some(reason) {
                return None;
            }
        }
        if record.stored {
            let (output_stack, output_temps, object_dumps) =
                snapshot_outputs(&frame, &mem, &mat.var_oops);
            paths.push(ExploredPath {
                instruction: InstrUnderTest::Bytecode(member),
                constraints: path,
                model: record.model.clone(),
                outcome,
                output_stack,
                output_temps,
                object_dumps,
            });
        }
    }
    if state != rep.state || paths.len() != rep.paths.len() {
        return None;
    }
    // Curation, iteration and solver counters are walk properties,
    // pinned by the verified per-step identities; probe models are a
    // pure function of (state, constraints, model), all verified
    // equal, so the representative's pass transfers as-is.
    Some(ExplorationResult {
        paths,
        curated_out: rep.curated_out.clone(),
        state,
        iterations: rep.iterations,
        solver: rep.solver,
        trail: rep.trail,
        probe_models: rep.probe_models.clone(),
        replay_log: None,
        // A replay's concrete work is the verified re-execution above;
        // its probing transfers from the representative without any
        // new solves, so the member charges no probe time of its own.
        walk_run: replay_t.elapsed(),
        probe_solve: Duration::ZERO,
    })
}
