//! Frame materialization: from a solver model to a concrete VM frame.
//!
//! This is the "abstract frame construction" arrow of Fig. 2 and the
//! *concrete input VM frame* box of Fig. 1: every input variable is
//! turned into a real tagged value or heap object in a **fresh**
//! object memory. Materialization is deterministic — the same model
//! over the same state always produces the same heap layout — which is
//! what lets the differential tester rebuild bit-identical input
//! frames for the interpreter run and for each compiled run.

use igjit_heap::fxhash::FxHashMap;

use igjit_heap::{ClassIndex, ObjectFormat, ObjectMemory, Oop, Snapshot};
use igjit_interp::{Frame, MethodInfo};
use igjit_solver::{Kind, Model, VarId};

use crate::state::{AbstractState, MAX_FRAME_ELEMS, MAX_OBJ_ELEMS};
use crate::sym::SymOop;

/// A model assignment the materializer could not realize faithfully
/// (e.g. a SmallInteger witness outside the 31-bit tagged range).
///
/// The materializer substitutes a deterministic in-range fallback so
/// the run can proceed, but records the event so the differential
/// harness can report the path as a test error instead of silently
/// testing an input the solver never promised.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WitnessError {
    /// The input variable whose assignment was unrealizable.
    pub var: VarId,
    /// The out-of-range integer witness from the model.
    pub value: i64,
    /// What went wrong.
    pub reason: &'static str,
}

impl std::fmt::Display for WitnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?} = {}: {}", self.var, self.value, self.reason)
    }
}

/// The product of materialization: the symbolic frame handed to the
/// tracing context, plus the variable→oop mapping used for output
/// snapshots.
#[derive(Clone, Debug)]
pub struct MaterializedFrame {
    /// The input frame (values carry their input-variable origins).
    pub frame: Frame<SymOop>,
    /// Concrete oop chosen for each variable that denotes a VM value.
    pub var_oops: FxHashMap<VarId, Oop>,
    /// Model assignments that could not be realized faithfully.
    pub witness_errors: Vec<WitnessError>,
}

/// A materialized frame together with its heap, sealed right after
/// construction so the differential harness can run engine after
/// engine on the *same* memory, rolling back to the sealed image
/// between runs instead of re-materializing from the model.
#[derive(Clone, Debug)]
pub struct BaseImage {
    /// The heap holding the materialized objects, sealed.
    pub mem: ObjectMemory,
    /// Token for rolling `mem` back to its just-materialized state.
    pub snapshot: Snapshot,
    /// The input frame (values carry their input-variable origins).
    pub frame: Frame<SymOop>,
    /// Concrete oop chosen for each variable that denotes a VM value.
    pub var_oops: FxHashMap<VarId, Oop>,
    /// Model assignments that could not be realized faithfully.
    pub witness_errors: Vec<WitnessError>,
}

/// Materializes `model` once into a fresh heap and seals it. The
/// result replaces the rebuild-per-engine idiom: each engine runs on
/// `mem` and then `mem.restore(&snapshot)` rewinds only the words the
/// run actually dirtied.
pub fn materialize_base(state: &AbstractState, model: &Model) -> BaseImage {
    let mut state = state.clone();
    let mut mem = ObjectMemory::new();
    let mat = materialize_frame(&mut state, model, &mut mem);
    let snapshot = mem.seal();
    BaseImage {
        mem,
        snapshot,
        frame: mat.frame,
        var_oops: mat.var_oops,
        witness_errors: mat.witness_errors,
    }
}

struct Materializer<'a> {
    state: &'a mut AbstractState,
    model: &'a Model,
    mem: &'a mut ObjectMemory,
    /// Memo keyed by alias root so `ObjEq` variables share one object.
    memo: FxHashMap<u32, Oop>,
    var_oops: FxHashMap<VarId, Oop>,
    witness_errors: Vec<WitnessError>,
}

impl Materializer<'_> {
    fn value_of(&mut self, var: VarId, depth: u32) -> Oop {
        let a = self.model.assignment(var);
        if let Some(&oop) = self.memo.get(&a.alias) {
            self.var_oops.insert(var, oop);
            return oop;
        }
        let oop = self.build(var, depth);
        self.memo.insert(a.alias, oop);
        self.var_oops.insert(var, oop);
        oop
    }

    fn build(&mut self, var: VarId, depth: u32) -> Oop {
        let a = self.model.assignment(var);
        let nil = self.mem.nil();
        if depth > 4 {
            return nil; // bounded object-graph depth
        }
        match a.kind {
            Kind::SmallInt => match Oop::try_from_small_int(a.int) {
                Some(oop) => oop,
                None => {
                    // Out-of-range witness: fall back to the nearest
                    // representable value (deterministic) and report it
                    // rather than panicking in `from_small_int`.
                    self.witness_errors.push(WitnessError {
                        var,
                        value: a.int,
                        reason: "SmallInteger witness outside the 31-bit tagged range",
                    });
                    Oop::from_small_int(
                        a.int.clamp(igjit_heap::SMALL_INT_MIN, igjit_heap::SMALL_INT_MAX),
                    )
                }
            },
            Kind::Float => self.mem.instantiate_float(a.float).unwrap_or(nil),
            Kind::Nil => nil,
            Kind::True => self.mem.true_object(),
            Kind::False => self.mem.false_object(),
            Kind::ExternalAddress => {
                let addr = a.int.clamp(0, i64::from(u32::MAX)) as u32;
                self.mem.instantiate_external_address(addr).unwrap_or(nil)
            }
            Kind::Array | Kind::Object | Kind::CompiledMethod | Kind::Context
            | Kind::Association => {
                let (class, format) = match a.kind {
                    Kind::Array => (ClassIndex::ARRAY, ObjectFormat::Indexable),
                    Kind::Object => (ClassIndex::OBJECT, ObjectFormat::Fixed),
                    Kind::CompiledMethod => {
                        (ClassIndex::COMPILED_METHOD, ObjectFormat::CompiledMethod)
                    }
                    Kind::Context => (ClassIndex::CONTEXT, ObjectFormat::Fixed),
                    _ => (ClassIndex::ASSOCIATION, ObjectFormat::Fixed),
                };
                let size = self.size_of(var);
                let Ok(oop) = self.mem.allocate(class, format, size) else {
                    return nil;
                };
                // Two-phase: publish the object before filling slots so
                // cyclic shapes terminate.
                self.memo.insert(a.alias, oop);
                let slots: Vec<(u32, VarId)> = self
                    .state
                    .shape(var)
                    .slots
                    .iter()
                    .enumerate()
                    .filter_map(|(i, sv)| sv.map(|sv| (i as u32, sv)))
                    .collect();
                for (i, slot_var) in slots {
                    if i < size {
                        let v = self.value_of(slot_var, depth + 1);
                        let _ = self.mem.store_pointer(oop, i, v);
                    }
                }
                oop
            }
            Kind::ByteArray | Kind::String | Kind::Symbol => {
                let class = match a.kind {
                    Kind::ByteArray => ClassIndex::BYTE_ARRAY,
                    Kind::String => ClassIndex::STRING,
                    _ => ClassIndex::SYMBOL,
                };
                let size = self.size_of(var);
                self.mem
                    .instantiate_bytes(class, &vec![0u8; size as usize])
                    .unwrap_or(nil)
            }
            Kind::WordArray => {
                let size = self.size_of(var);
                self.mem
                    .allocate(ClassIndex::WORD_ARRAY, ObjectFormat::Words, size)
                    .unwrap_or(nil)
            }
        }
    }

    fn size_of(&mut self, var: VarId) -> u32 {
        match self.state.shape(var).size_var {
            Some(sv) => self.model.int_value(sv).clamp(0, MAX_OBJ_ELEMS) as u32,
            None => 0,
        }
    }
}

/// Materializes a fresh concrete frame from `model` into `mem`.
pub fn materialize_frame(
    state: &mut AbstractState,
    model: &Model,
    mem: &mut ObjectMemory,
) -> MaterializedFrame {
    let stack_size = model.int_value(state.stack_size).clamp(0, MAX_FRAME_ELEMS) as usize;
    let temp_count = model.int_value(state.temp_count).clamp(0, MAX_FRAME_ELEMS) as usize;
    let literal_count = model.int_value(state.literal_count).clamp(0, MAX_FRAME_ELEMS) as usize;
    // Make sure the variables exist (the counters may have been pushed
    // past the currently-registered slots by constraint negation).
    for d in 0..stack_size {
        state.stack_var_at(d);
    }
    for i in 0..temp_count {
        state.temp_var_at(i);
    }
    for i in 0..literal_count {
        state.literal_var_at(i);
    }

    let mut m = Materializer {
        state,
        model,
        mem,
        memo: FxHashMap::default(),
        var_oops: FxHashMap::default(),
        witness_errors: Vec::new(),
    };

    let receiver_var = m.state.receiver;
    let receiver = SymOop::var(m.value_of(receiver_var, 0), receiver_var);

    let mut stack = Vec::with_capacity(stack_size);
    for d in (0..stack_size).rev() {
        let var = m.state.stack_vars[d];
        stack.push(SymOop::var(m.value_of(var, 0), var));
    }
    let mut temps = Vec::with_capacity(temp_count);
    for i in 0..temp_count {
        let var = m.state.temp_vars[i];
        temps.push(SymOop::var(m.value_of(var, 0), var));
    }
    let mut literals = Vec::with_capacity(literal_count);
    for i in 0..literal_count {
        let var = m.state.literal_vars[i];
        literals.push(SymOop::var(m.value_of(var, 0), var));
    }

    let var_oops = m.var_oops;
    let witness_errors = m.witness_errors;
    let mut frame = Frame::new(
        receiver,
        MethodInfo { literals, num_args: 0, num_temps: temp_count as u8 },
    );
    frame.temps = temps;
    frame.stack = stack;
    MaterializedFrame { frame, var_oops, witness_errors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igjit_solver::{solve, Constraint, Kind};

    #[test]
    fn empty_model_gives_empty_frame() {
        let mut state = AbstractState::new();
        let p = state.problem_with(&[]);
        let model = solve(&p).unwrap();
        let mut mem = ObjectMemory::new();
        let mat = materialize_frame(&mut state, &model, &mut mem);
        assert_eq!(mat.frame.depth(), 0);
        assert_eq!(mat.frame.temps.len(), 0);
        assert!(mat.frame.receiver.concrete.is_small_int(), "default kind is SmallInt");
    }

    #[test]
    fn stack_size_constraint_grows_the_stack() {
        let mut state = AbstractState::new();
        let c = Constraint::Int(
            igjit_solver::CmpOp::Ge,
            igjit_solver::LinExpr::var(state.stack_size),
            igjit_solver::LinExpr::constant(2),
        );
        let p = state.problem_with(std::slice::from_ref(&c));
        let model = solve(&p).unwrap();
        let mut mem = ObjectMemory::new();
        let mat = materialize_frame(&mut state, &model, &mut mem);
        assert!(mat.frame.depth() >= 2);
        // Depth-0 (top) value corresponds to stack var 0.
        assert_eq!(mat.frame.stack_at_depth(0).as_var(), Some(state.stack_vars[0]));
    }

    #[test]
    fn kinds_materialize_to_matching_classes() {
        let state = AbstractState::new();
        let rcvr = state.receiver;
        for (kind, class) in [
            (Kind::Float, ClassIndex::FLOAT),
            (Kind::Array, ClassIndex::ARRAY),
            (Kind::ByteArray, ClassIndex::BYTE_ARRAY),
            (Kind::ExternalAddress, ClassIndex::EXTERNAL_ADDRESS),
            (Kind::Nil, ClassIndex::UNDEFINED_OBJECT),
        ] {
            let mut s = state.clone();
            let p = s.problem_with(&[Constraint::kind_is(rcvr, kind)]);
            let model = solve(&p).unwrap();
            let mut mem = ObjectMemory::new();
            let mat = materialize_frame(&mut s, &model, &mut mem);
            assert_eq!(mem.class_index_of(mat.frame.receiver.concrete), class, "{kind:?}");
        }
    }

    #[test]
    fn object_sizes_come_from_size_vars() {
        let mut state = AbstractState::new();
        let rcvr = state.receiver;
        let size_var = state.size_var_of(rcvr);
        let cs = vec![
            Constraint::kind_is(rcvr, Kind::Array),
            Constraint::Int(
                igjit_solver::CmpOp::Ge,
                igjit_solver::LinExpr::var(size_var),
                igjit_solver::LinExpr::constant(3),
            ),
        ];
        let p = state.problem_with(&cs);
        let model = solve(&p).unwrap();
        let mut mem = ObjectMemory::new();
        let mat = materialize_frame(&mut state, &model, &mut mem);
        assert!(mem.slot_count(mat.frame.receiver.concrete).unwrap() >= 3);
    }

    #[test]
    fn aliased_vars_share_one_object() {
        let mut state = AbstractState::new();
        let a = state.stack_var_at(0).unwrap();
        let b = state.stack_var_at(1).unwrap();
        let cs = vec![
            Constraint::Int(
                igjit_solver::CmpOp::Ge,
                igjit_solver::LinExpr::var(state.stack_size),
                igjit_solver::LinExpr::constant(2),
            ),
            Constraint::kind_is(a, Kind::Array),
            Constraint::ObjEq(a, b),
        ];
        let p = state.problem_with(&cs);
        let model = solve(&p).unwrap();
        let mut mem = ObjectMemory::new();
        let mat = materialize_frame(&mut state, &model, &mut mem);
        assert_eq!(
            mat.frame.stack_at_depth(0).concrete,
            mat.frame.stack_at_depth(1).concrete
        );
    }

    #[test]
    fn out_of_range_witness_is_reported_not_fatal() {
        // An adversarial model that assigns the receiver an integer
        // outside the 31-bit tagged range. Materialization must not
        // panic (the old `from_small_int` path aborted the whole
        // campaign worker); it degrades to a clamped value plus a
        // reported witness error.
        let mut state = AbstractState::new();
        let rcvr = state.receiver;
        let bad = igjit_solver::Assignment {
            kind: Kind::SmallInt,
            int: igjit_heap::SMALL_INT_MAX + 1,
            float: 0.0,
            alias: 0,
        };
        let mut assignments = Vec::new();
        for i in 0..=rcvr.index() {
            assignments.push(if i == rcvr.index() {
                bad
            } else {
                igjit_solver::Assignment {
                    kind: Kind::SmallInt,
                    int: 0,
                    float: 0.0,
                    alias: 1 + i as u32,
                }
            });
        }
        let model = igjit_solver::Model::from_assignments(assignments);
        let mut mem = ObjectMemory::new();
        let mat = materialize_frame(&mut state, &model, &mut mem);
        assert_eq!(mat.witness_errors.len(), 1);
        assert_eq!(mat.witness_errors[0].var, rcvr);
        assert_eq!(mat.witness_errors[0].value, igjit_heap::SMALL_INT_MAX + 1);
        assert_eq!(
            mat.frame.receiver.concrete,
            Oop::from_small_int(igjit_heap::SMALL_INT_MAX),
            "fallback is the nearest representable value"
        );
    }

    #[test]
    fn materialization_is_deterministic() {
        let state = AbstractState::new();
        let rcvr = state.receiver;
        let cs = vec![Constraint::kind_is(rcvr, Kind::Array)];
        let p = state.problem_with(&cs);
        let model = solve(&p).unwrap();
        let mut mem1 = ObjectMemory::new();
        let mut s1 = state.clone();
        let f1 = materialize_frame(&mut s1, &model, &mut mem1);
        let mut mem2 = ObjectMemory::new();
        let mut s2 = state.clone();
        let f2 = materialize_frame(&mut s2, &model, &mut mem2);
        assert_eq!(f1.frame.receiver.concrete, f2.frame.receiver.concrete);
    }
}
