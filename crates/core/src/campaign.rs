//! The full evaluation campaign (§5 of the paper).

use std::time::{Duration, Instant};

use igjit_bytecode::{instruction_catalog, Instruction};
use igjit_concolic::InstrUnderTest;
use igjit_difftest::{test_instruction, CampaignRow, DefectCategory, InstructionOutcome, Target};
use igjit_interp::{native_catalog, NativeMethodId};
use igjit_jit::CompilerKind;
use igjit_machine::Isa;

/// Campaign knobs.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// ISAs each test case runs on (the paper uses x86 + ARM32).
    pub isas: Vec<Isa>,
    /// Whether kind probing is enabled (needed to surface the
    /// `primitiveAsFloat` interpreter defect).
    pub probes: bool,
    /// Worker threads for the per-instruction loop (1 = sequential).
    /// Instructions are independent, so the campaign parallelizes
    /// embarrassingly; per-instruction timings stay meaningful because
    /// each instruction is processed on one worker.
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig { isas: vec![Isa::X86ish, Isa::Arm32ish], probes: true, threads: 1 }
    }
}

/// The campaign driver: explores, compiles, runs and compares every
/// instruction of the VM against a chosen compiler.
#[derive(Clone, Debug, Default)]
pub struct Campaign {
    config: CampaignConfig,
}

/// Per-instruction timing sample (feeds Figures 6 and 7).
#[derive(Clone, Debug)]
pub struct TimingSample {
    /// Instruction label.
    pub label: String,
    /// Whether this is a native method (vs a bytecode).
    pub is_native: bool,
    /// Time spent in concolic exploration + differential runs.
    pub elapsed: Duration,
    /// Paths explored.
    pub paths: usize,
}

/// Aggregate result of one campaign run (one Table 2 row plus the
/// per-instruction details).
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// The Table 2 row.
    pub row: CampaignRow,
    /// Per-instruction outcomes.
    pub outcomes: Vec<InstructionOutcome>,
    /// Per-instruction wall-clock samples.
    pub timings: Vec<TimingSample>,
}

impl CampaignReport {
    /// Distinct defect causes across all outcomes.
    pub fn causes(&self) -> Vec<igjit_difftest::CauseKey> {
        let mut keys: Vec<_> = self.outcomes.iter().flat_map(|o| o.causes()).collect();
        keys.sort();
        keys.dedup();
        keys
    }

    /// Cause counts per defect family (one Table 3 contribution).
    pub fn causes_by_category(&self) -> Vec<(DefectCategory, usize)> {
        DefectCategory::ALL
            .iter()
            .map(|&cat| {
                (cat, self.causes().iter().filter(|c| c.category == cat).count())
            })
            .collect()
    }
}

impl Campaign {
    /// A campaign with the paper's configuration (both ISAs, probing
    /// on).
    pub fn new(config: CampaignConfig) -> Campaign {
        Campaign { config }
    }

    /// A fast configuration for doctests and examples: one ISA, no
    /// probing.
    pub fn quick() -> Campaign {
        Campaign::new(CampaignConfig { isas: vec![Isa::X86ish], probes: false, threads: 1 })
    }

    /// The configuration in use.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Differentially tests one bytecode instruction against one tier.
    pub fn test_bytecode_instruction(
        &self,
        instr: Instruction,
        kind: CompilerKind,
    ) -> InstructionOutcome {
        test_instruction(
            InstrUnderTest::Bytecode(instr),
            Target::Bytecode(kind),
            &self.config.isas,
            self.config.probes,
        )
    }

    /// Differentially tests one native method against the template
    /// compiler.
    pub fn test_native_method(&self, id: NativeMethodId) -> InstructionOutcome {
        test_instruction(
            InstrUnderTest::Native(id),
            Target::NativeMethods,
            &self.config.isas,
            self.config.probes,
        )
    }

    /// Runs a batch of instructions, sequentially or on a crossbeam
    /// worker pool, preserving input order in the outputs.
    fn run_batch(
        &self,
        label: String,
        items: Vec<(String, bool, InstrUnderTest, Target)>,
    ) -> CampaignReport {
        let threads = self.config.threads.max(1);
        let run_one = |(name, is_native, instr, target): &(String, bool, InstrUnderTest, Target)|
         -> (TimingSample, InstructionOutcome) {
            let t0 = Instant::now();
            let outcome =
                test_instruction(*instr, *target, &self.config.isas, self.config.probes);
            (
                TimingSample {
                    label: name.clone(),
                    is_native: *is_native,
                    elapsed: t0.elapsed(),
                    paths: outcome.paths_found,
                },
                outcome,
            )
        };
        let results: Vec<(TimingSample, InstructionOutcome)> = if threads <= 1 {
            items.iter().map(run_one).collect()
        } else {
            let next = std::sync::atomic::AtomicUsize::new(0);
            let mut slots: Vec<Option<(TimingSample, InstructionOutcome)>> =
                (0..items.len()).map(|_| None).collect();
            let slots_mutex = parking_lot::Mutex::new(&mut slots);
            crossbeam::thread::scope(|s| {
                for _ in 0..threads {
                    s.spawn(|_| loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let r = run_one(&items[i]);
                        slots_mutex.lock()[i] = Some(r);
                    });
                }
            })
            .expect("campaign workers");
            slots.into_iter().map(|s| s.expect("every slot filled")).collect()
        };
        let mut row = CampaignRow { label, ..CampaignRow::default() };
        let mut outcomes = Vec::with_capacity(results.len());
        let mut timings = Vec::with_capacity(results.len());
        for (t, o) in results {
            row.absorb(&o);
            timings.push(t);
            outcomes.push(o);
        }
        CampaignReport { row, outcomes, timings }
    }

    /// Runs the native-method row of Table 2: all 112 primitives.
    pub fn run_native_methods(&self) -> CampaignReport {
        let items = native_catalog()
            .into_iter()
            .map(|spec| {
                (spec.name.clone(), true, InstrUnderTest::Native(spec.id), Target::NativeMethods)
            })
            .collect();
        self.run_batch(Target::NativeMethods.label().to_string(), items)
    }

    /// Runs one bytecode-compiler row of Table 2: the whole
    /// instruction catalog against one tier.
    pub fn run_bytecodes(&self, kind: CompilerKind) -> CampaignReport {
        let items = instruction_catalog()
            .into_iter()
            .map(|spec| {
                (
                    format!("{:?}", spec.instruction),
                    false,
                    InstrUnderTest::Bytecode(spec.instruction),
                    Target::Bytecode(kind),
                )
            })
            .collect();
        self.run_batch(kind.name().to_string(), items)
    }

    /// The full Table 2: native methods plus the three bytecode tiers.
    pub fn run_all(&self) -> Vec<CampaignReport> {
        let mut reports = vec![self.run_native_methods()];
        for kind in CompilerKind::ALL {
            reports.push(self.run_bytecodes(kind));
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_on_one_bytecode() {
        let c = Campaign::quick();
        let o = c.test_bytecode_instruction(Instruction::LessThan, CompilerKind::StackToRegister);
        assert!(o.paths_found >= 3);
        // The float comparison fast path differs (the interpreter
        // inlines it, the compiler sends); it shows up once per
        // comparison outcome (true/false), so one or two paths.
        assert!((1..=2).contains(&o.difference_count()), "{:?}", o.verdicts);
    }

    #[test]
    fn quick_campaign_on_one_native() {
        let c = Campaign::quick();
        let o = c.test_native_method(NativeMethodId(2));
        assert!(o.curated >= 3);
        assert_eq!(o.difference_count(), 0);
    }

    #[test]
    fn report_cause_aggregation() {
        let c = Campaign::quick();
        let mut row = CampaignRow { label: "t".into(), ..Default::default() };
        let o = c.test_native_method(NativeMethodId(14));
        row.absorb(&o);
        let report = CampaignReport { row, outcomes: vec![o], timings: vec![] };
        let by_cat = report.causes_by_category();
        let behavioural = by_cat
            .iter()
            .find(|(c, _)| *c == DefectCategory::BehaviouralDifference)
            .unwrap();
        assert!(behavioural.1 >= 1);
    }
}
