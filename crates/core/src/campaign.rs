//! The full evaluation campaign (§5 of the paper) — engine v3.
//!
//! The driver feeds every instruction of the VM through the
//! explore → materialize → compile → simulate → compare pipeline and
//! aggregates the Table 2 rows. Version 2 of the engine added the
//! lock-free parallel sweep, the shared exploration cache and the
//! per-stage observability layer. Version 3 makes the two hot paths
//! sublinear in campaign size:
//!
//! - **Incremental exploration solving.** The concolic explorer and
//!   the kind-probing pass drive an [`igjit_solver::Session`] with
//!   push/pop scopes, so each negated-branch solve reuses the shared
//!   prefix's propagation state instead of re-solving it from scratch.
//!   The session's work counters surface here as [`Metrics::solver`].
//! - **A compiled-code cache.** Compiled test methods are a pure
//!   function of `(front-end, ISA, instructions, embedded frame
//!   values, special oops)`; an [`igjit_jit::CodeCache`] shared across
//!   models, probes, paths and workers collapses the campaign's
//!   compile invocations onto one per distinct key.
//! - **Skew-free parallel stage accounting.** Each result is tagged
//!   with the worker that produced it; [`Metrics`] reports both the
//!   CPU-side per-stage sum and the per-stage maximum over workers
//!   (the critical path the wall clock actually waits on).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use igjit_bytecode::{instruction_catalog, Instruction};
use igjit_concolic::{ExplorationCache, Explorer, InstrUnderTest};
use igjit_difftest::{
    test_instruction_with, CampaignRow, DefectCategory, ExploreCost, InstructionOutcome,
    SnapshotStats, StageTimes, Target,
};
use igjit_interp::{native_catalog, NativeMethodId};
use igjit_jit::{CodeCache, CompilerKind};
use igjit_machine::Isa;
use igjit_metajit::MetaCache;
use igjit_solver::{SessionStats, TrailStats};

/// Campaign knobs.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// ISAs each test case runs on (the paper uses x86 + ARM32).
    pub isas: Vec<Isa>,
    /// Whether kind probing is enabled (needed to surface the
    /// `primitiveAsFloat` interpreter defect).
    pub probes: bool,
    /// Worker threads for the per-instruction loop (1 = sequential).
    /// Instructions are independent, so the campaign parallelizes
    /// embarrassingly; per-instruction timings stay meaningful because
    /// each instruction is processed on one worker. Defaults to the
    /// machine's available parallelism.
    pub threads: usize,
    /// Whether compiled test methods are cached and shared across
    /// models, probes, paths and workers. Off, every lookup compiles
    /// fresh (and counts as a miss), which is the engine-v2 behaviour.
    pub code_cache: bool,
    /// Whether each (path, model) is materialized once into a sealed
    /// base image replayed across the oracle and every ISA via
    /// copy-on-write heap restore. Off, every run rebuilds the heap
    /// from the model (the engine-v3 behaviour). Outcomes are
    /// identical either way.
    pub heap_snapshot: bool,
    /// Whether compiled artifacts are predecoded once per code-cache
    /// entry and replayed through a persistent simulator session
    /// (engine v5). Off, every step byte-decodes and every run
    /// reallocates the simulator (the engine-v4 behaviour). Outcomes
    /// are identical either way.
    pub predecode: bool,
    /// Whether *interpreter* runs go through the predecoded pipeline
    /// (engine v8): oracle runs execute the per-catalog-entry cached
    /// [`igjit_interp::PredecodedProgram`] view, and sequence/method
    /// runs resolve their step functions once up front instead of
    /// dispatching per step. Off is the engine-v7 behaviour. Outcomes
    /// are identical either way (`tests/engine_v8_identity.rs`).
    pub interp_predecode: bool,
    /// Whether the explorer's solver sessions hash-cons constraints
    /// (one classification per distinct constraint, interned path
    /// dedup — engine v6). Outcomes are identical either way. Engine
    /// v7 turned it off (the consing overhead outweighed the cached
    /// classifications); engine v8 turned it back on after moving the
    /// intern tables to the seeded `FxHash` maps, which flipped the
    /// ablation: the walk now measures ~20% faster *with* consing
    /// (EXPERIMENTS.md).
    pub hash_cons: bool,
    /// Whether one exploration per instruction *family* is verifiably
    /// replayed for every member (engine v6) instead of re-solving
    /// each opcode's negation tree. Off is the engine-v5 behaviour.
    /// Outcomes are identical either way.
    pub family_share: bool,
    /// Threads negating sibling subtrees of one instruction's path
    /// tree in parallel (1 = sequential; speculative subtrees merge
    /// deterministically, so outcomes are identical at any count).
    pub negate_threads: usize,
    /// Persistent corpus file (engine v7). When set, the campaign
    /// loads exploration, compiled-code and outcome entries whose
    /// fingerprints match this build + configuration before running,
    /// answers warm instructions without re-running the pipeline, and
    /// [`Campaign::save_corpus`] writes new entries back atomically.
    /// Any mismatch, truncation or version skew degrades to a cold
    /// run — never an error, never a row change.
    pub corpus: Option<PathBuf>,
    /// Whether the meta-compiled tier (#5, engine v9) runs as a fifth
    /// Table 2 row: a partial evaluator over the interpreter's step
    /// functions compiles each (instruction, frame) pair to CogRTL,
    /// with an interpreter trampoline for refused pairs. The tier is
    /// purely additive — the rows for tiers 1–4 are byte-identical
    /// whether it is on or off (`tests/engine_v9_meta_tier.rs`).
    pub meta_tier: bool,
    /// Whether solver sessions run hypothesis scopes on an undo trail
    /// instead of cloning the interval store per scope (engine v10,
    /// `IGJIT_SOLVER_TRAIL`). Rows, models and solver counters are
    /// byte-identical either way (`tests/engine_v10_identity.rs`);
    /// this only trades per-solve clone traffic for O(narrowings)
    /// trail bookkeeping.
    pub solver_trail: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            isas: vec![Isa::X86ish, Isa::Arm32ish],
            probes: true,
            threads: default_threads(),
            code_cache: true,
            heap_snapshot: true,
            predecode: true,
            interp_predecode: true,
            hash_cons: true,
            family_share: true,
            negate_threads: 1,
            corpus: None,
            meta_tier: true,
            solver_trail: true,
        }
    }
}

/// The machine's available parallelism (1 when undetectable).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Progress of a running campaign batch, delivered to the callback
/// registered with [`Campaign::on_progress`] after each instruction
/// completes. Callbacks run on worker threads and must be cheap.
#[derive(Clone, Debug)]
pub struct Progress {
    /// Label of the running Table 2 row (compiler name).
    pub row: String,
    /// Instructions finished so far in this row.
    pub completed: usize,
    /// Instructions in this row.
    pub total: usize,
    /// Label of the instruction that just finished.
    pub current: String,
}

type ProgressCallback = Arc<dyn Fn(&Progress) + Send + Sync>;

/// Aggregated observability data for one campaign batch (or, via
/// [`Metrics::merge`], a whole campaign).
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Worker threads the batch ran on.
    pub threads: usize,
    /// Instructions processed.
    pub instructions: usize,
    /// Summed per-stage wall-clock across all instructions (CPU-side
    /// cost; exceeds `wall_clock` when threads > 1).
    pub stages: StageTimes,
    /// Per-stage maximum over the workers' self-time sums — the
    /// critical path the batch wall clock actually waits on. Equal to
    /// `stages` when the batch ran sequentially; under merge, maxima
    /// of back-to-back batches add.
    pub stages_max: StageTimes,
    /// Exploration-cache hits.
    pub cache_hits: usize,
    /// Exploration-cache misses (explorations actually run).
    pub cache_misses: usize,
    /// Cache misses served by verified family replay instead of a
    /// full negation-tree exploration.
    pub family_hits: usize,
    /// Family replays that failed verification and fell back to a
    /// full exploration.
    pub family_fallbacks: usize,
    /// Compiled-code-cache hits (lookups answered without compiling).
    pub compile_hits: usize,
    /// Compiled-code-cache misses (compiler invocations actually run;
    /// with the cache disabled, every lookup).
    pub compile_misses: usize,
    /// Instructions answered from the warm corpus overlay without
    /// running the pipeline at all (zero when no corpus is attached).
    pub corpus_hits: usize,
    /// Instructions that ran the full pipeline while a corpus was
    /// attached (their outcomes are recorded for the next save; zero
    /// when no corpus is attached).
    pub corpus_misses: usize,
    /// Incremental-solver work counters summed over exploration (cache
    /// misses only — cached explorations did no solver work) and kind
    /// probing.
    pub solver: SessionStats,
    /// Trail-mode solver counters (engine v10), summed the same way:
    /// scope marks taken, trail ops unwound, store clones the trail
    /// replaced, and model-pool traffic. All zero with
    /// `solver_trail` off except the pool counters, which the clone
    /// path also feeds.
    pub trail: TrailStats,
    /// Models whose materialization hit an unrealizable witness and
    /// were reported as test errors instead of compared.
    pub witness_errors: usize,
    /// Models whose oracle run panicked (crashing interpreter paths,
    /// surfaced as test errors instead of silently skipped models).
    pub oracle_panics: usize,
    /// Seal/restore accounting of the copy-on-write heap replay.
    pub snapshot: SnapshotStats,
    /// End-to-end wall-clock of the batch.
    pub wall_clock: Duration,
}

impl Metrics {
    /// Fraction of exploration lookups served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of compile lookups served from the code cache.
    pub fn compile_hit_rate(&self) -> f64 {
        let total = self.compile_hits + self.compile_misses;
        if total == 0 {
            0.0
        } else {
            self.compile_hits as f64 / total as f64
        }
    }

    /// Folds another batch's metrics into this one. Wall-clocks add
    /// (batches run back to back, so their per-stage maxima add too);
    /// thread counts keep the maximum.
    pub fn merge(&mut self, other: &Metrics) {
        self.threads = self.threads.max(other.threads);
        self.instructions += other.instructions;
        self.stages.merge(&other.stages);
        self.stages_max.merge(&other.stages_max);
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.family_hits += other.family_hits;
        self.family_fallbacks += other.family_fallbacks;
        self.compile_hits += other.compile_hits;
        self.compile_misses += other.compile_misses;
        self.corpus_hits += other.corpus_hits;
        self.corpus_misses += other.corpus_misses;
        self.solver.merge(&other.solver);
        self.trail.merge(&other.trail);
        self.witness_errors += other.witness_errors;
        self.oracle_panics += other.oracle_panics;
        self.snapshot.merge(&other.snapshot);
        self.wall_clock += other.wall_clock;
    }

    /// Renders the metrics as a self-contained JSON object.
    pub fn to_json(&self) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1000.0;
        // `walk_run`/`probe_solve` are sub-slices of `explore` (engine
        // v8): they re-attribute time already counted there, so `total`
        // deliberately excludes them.
        let stages = |s: &StageTimes| {
            format!(
                concat!(
                    "{{\"explore\":{:.3},\"materialize\":{:.3},",
                    "\"compile\":{:.3},\"meta_compile\":{:.3},",
                    "\"simulate\":{:.3},\"compare\":{:.3},",
                    "\"setup\":{:.3},\"decode\":{:.3},\"hash\":{:.3},",
                    "\"report\":{:.3},\"progress\":{:.3},\"other\":{:.3},",
                    "\"walk_run\":{:.3},\"probe_solve\":{:.3},",
                    "\"total\":{:.3}}}"
                ),
                ms(s.explore),
                ms(s.materialize),
                ms(s.compile),
                ms(s.meta_compile),
                ms(s.simulate),
                ms(s.compare),
                ms(s.setup),
                ms(s.decode),
                ms(s.hash),
                ms(s.report),
                ms(s.progress),
                ms(s.other),
                ms(s.walk_run),
                ms(s.probe_solve),
                ms(s.total()),
            )
        };
        let hist = self
            .snapshot
            .dirty_hist
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\"threads\":{},\"instructions\":{},\"wall_clock_ms\":{:.3},",
                "\"witness_errors\":{},\"oracle_panics\":{},",
                "\"cache\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{:.4},",
                "\"family_hits\":{},\"family_fallbacks\":{}}},",
                "\"compile_cache\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{:.4}}},",
                "\"corpus\":{{\"hits\":{},\"misses\":{}}},",
                "\"solver\":{{\"solves\":{},\"sat\":{},\"unsat\":{},\"nodes_visited\":{},",
                "\"propagation_reuse\":{},\"rebuilds\":{},\"model_reuse\":{},",
                "\"pushes\":{},\"max_depth\":{}}},",
                "\"trail\":{{\"marks\":{},\"undone_ops\":{},\"clones_avoided\":{},",
                "\"pool_hits\":{},\"pool_misses\":{},\"pool_hit_rate\":{:.4}}},",
                "\"snapshot\":{{\"seals\":{},\"restores\":{},\"dirty_words\":{},",
                "\"dirty_hist\":[{}]}},",
                "\"stages_ms\":{},\"stages_max_ms\":{}}}"
            ),
            self.threads,
            self.instructions,
            ms(self.wall_clock),
            self.witness_errors,
            self.oracle_panics,
            self.cache_hits,
            self.cache_misses,
            self.cache_hit_rate(),
            self.family_hits,
            self.family_fallbacks,
            self.compile_hits,
            self.compile_misses,
            self.compile_hit_rate(),
            self.corpus_hits,
            self.corpus_misses,
            self.solver.solves,
            self.solver.sat,
            self.solver.unsat,
            self.solver.nodes_visited,
            self.solver.propagation_reuse,
            self.solver.rebuilds,
            self.solver.model_reuse,
            self.solver.pushes,
            self.solver.max_depth,
            self.trail.trail_marks,
            self.trail.undone_ops,
            self.trail.clones_avoided,
            self.trail.pool_hits,
            self.trail.pool_misses,
            self.trail.pool_hit_rate(),
            self.snapshot.seals,
            self.snapshot.restores,
            self.snapshot.dirty_words,
            hist,
            stages(&self.stages),
            stages(&self.stages_max),
        )
    }
}

/// The campaign driver: explores, compiles, runs and compares every
/// instruction of the VM against a chosen compiler.
#[derive(Clone, Default)]
pub struct Campaign {
    config: CampaignConfig,
    cache: Arc<ExplorationCache>,
    code_cache: Arc<CodeCache>,
    meta_cache: Arc<MetaCache>,
    on_progress: Option<ProgressCallback>,
    corpus: Option<Arc<CorpusState>>,
}

/// The warm overlay: outcomes loaded from a corpus file plus outcomes
/// recorded (or preloaded) during this process's runs, consulted by
/// `run_one` before running the pipeline.
struct CorpusState {
    /// File binding — path, this build's fingerprints and what loading
    /// yielded. `None` for a detached overlay (outcomes injected via
    /// [`Campaign::preload_outcomes`] without persistence).
    file: Option<(PathBuf, igjit_corpus::Fingerprints, igjit_corpus::LoadStats)>,
    /// Outcomes from the corpus file; immutable after construction, so
    /// workers read it lock-free.
    loaded: HashMap<(Target, InstrUnderTest), InstructionOutcome>,
    /// Outcomes produced by this process — what a save adds to the
    /// file, and what makes a repeated request warm within one process
    /// (the serve mode's amortization).
    recorded: Mutex<HashMap<(Target, InstrUnderTest), InstructionOutcome>>,
}

impl CorpusState {
    fn detached() -> CorpusState {
        CorpusState { file: None, loaded: HashMap::new(), recorded: Mutex::new(HashMap::new()) }
    }

    fn lookup(&self, target: Target, instr: InstrUnderTest) -> Option<InstructionOutcome> {
        if let Some(o) = self.loaded.get(&(target, instr)) {
            return Some(o.clone());
        }
        let recorded = self.recorded.lock().unwrap_or_else(|e| e.into_inner());
        recorded.get(&(target, instr)).cloned()
    }

    fn record(&self, target: Target, instr: InstrUnderTest, outcome: InstructionOutcome) {
        let mut recorded = self.recorded.lock().unwrap_or_else(|e| e.into_inner());
        recorded.entry((target, instr)).or_insert(outcome);
    }
}

/// Loads the configured corpus file (if any) and preloads the caches
/// from it. Load problems are warnings on stderr, never errors — a
/// bad corpus is a cold run.
fn attach_corpus(
    config: &CampaignConfig,
    cache: &ExplorationCache,
    code_cache: &CodeCache,
) -> Option<Arc<CorpusState>> {
    let path = config.corpus.as_ref()?;
    let fps = igjit_corpus::fingerprints(config.probes, &config.isas);
    let (corpus, stats) = igjit_corpus::load(path, &fps);
    for w in &stats.warnings {
        eprintln!("igjit: corpus {}: {}", path.display(), w);
    }
    for (key, exploration) in corpus.explorations {
        cache.preload(key, Arc::new(exploration));
    }
    for (key, artifact) in corpus.code {
        code_cache.preload(key, artifact);
    }
    Some(Arc::new(CorpusState {
        file: Some((path.clone(), fps, stats)),
        loaded: corpus.outcomes.into_iter().collect(),
        recorded: Mutex::new(HashMap::new()),
    }))
}

impl std::fmt::Debug for Campaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campaign")
            .field("config", &self.config)
            .field("cache_entries", &self.cache.len())
            .field("code_cache_entries", &self.code_cache.len())
            .field("meta_cache_entries", &self.meta_cache.len())
            .field("on_progress", &self.on_progress.is_some())
            .finish()
    }
}

/// Per-instruction timing sample (feeds Figures 6 and 7).
#[derive(Clone, Debug)]
pub struct TimingSample {
    /// Instruction label.
    pub label: String,
    /// Whether this is a native method (vs a bytecode).
    pub is_native: bool,
    /// Time spent in concolic exploration + differential runs.
    pub elapsed: Duration,
    /// Paths explored.
    pub paths: usize,
    /// Per-stage breakdown of `elapsed`.
    pub stages: StageTimes,
    /// Whether the exploration came from the shared cache.
    pub cache_hit: bool,
    /// Whether the outcome came from the warm corpus overlay (`None`
    /// when no corpus is attached).
    pub corpus_hit: Option<bool>,
}

/// Aggregate result of one campaign run (one Table 2 row plus the
/// per-instruction details).
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// The Table 2 row.
    pub row: CampaignRow,
    /// Per-instruction outcomes.
    pub outcomes: Vec<InstructionOutcome>,
    /// Per-instruction wall-clock samples.
    pub timings: Vec<TimingSample>,
    /// Observability data for the batch that produced this row.
    pub metrics: Metrics,
}

impl CampaignReport {
    /// Distinct defect causes across all outcomes.
    pub fn causes(&self) -> Vec<igjit_difftest::CauseKey> {
        let mut keys: Vec<_> = self.outcomes.iter().flat_map(|o| o.causes()).collect();
        keys.sort();
        keys.dedup();
        keys
    }

    /// Cause counts per defect family (one Table 3 contribution).
    pub fn causes_by_category(&self) -> Vec<(DefectCategory, usize)> {
        DefectCategory::ALL
            .iter()
            .map(|&cat| {
                (cat, self.causes().iter().filter(|c| c.category == cat).count())
            })
            .collect()
    }
}

/// One unit of campaign work: a labelled instruction × target pair.
type WorkItem = (String, bool, InstrUnderTest, Target);

impl Campaign {
    /// A campaign with the paper's configuration (both ISAs, probing
    /// on).
    pub fn new(config: CampaignConfig) -> Campaign {
        Campaign::with_exploration_cache(config, Arc::new(ExplorationCache::new()))
    }

    /// A campaign that shares an existing exploration cache instead of
    /// creating its own.
    ///
    /// The mutation campaign uses this to amortize exploration across
    /// mutants: fault injection perturbs only the JIT side of the
    /// pipeline, so the interpreter-derived exploration results stay
    /// valid for every mutant and the cache can be carried over. The
    /// compiled-code cache is still fresh per campaign — compiled
    /// artifacts *do* depend on the armed mutant.
    pub fn with_exploration_cache(
        config: CampaignConfig,
        cache: Arc<ExplorationCache>,
    ) -> Campaign {
        let code_cache = Arc::new(CodeCache::with_enabled(config.code_cache));
        let corpus = attach_corpus(&config, &cache, &code_cache);
        // Like the code cache, the meta cache is fresh per campaign:
        // meta artifacts are lowered through the (mutable-by-fault-
        // injection) backend, so they must never outlive an arming.
        let meta_cache = Arc::new(MetaCache::new());
        Campaign { config, cache, code_cache, meta_cache, on_progress: None, corpus }
    }

    /// A fast configuration for doctests and examples: one ISA, no
    /// probing, sequential.
    pub fn quick() -> Campaign {
        Campaign::new(CampaignConfig {
            isas: vec![Isa::X86ish],
            probes: false,
            threads: 1,
            ..CampaignConfig::default()
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The exploration cache shared by every run of this campaign.
    pub fn cache(&self) -> &ExplorationCache {
        &self.cache
    }

    /// An owning handle on the exploration cache, for carrying it into
    /// another campaign via [`Campaign::with_exploration_cache`].
    pub fn exploration_cache_arc(&self) -> Arc<ExplorationCache> {
        Arc::clone(&self.cache)
    }

    /// The compiled-code cache shared by every run of this campaign.
    pub fn code_cache(&self) -> &CodeCache {
        &self.code_cache
    }

    /// The meta-artifact cache shared by every run of this campaign
    /// (fresh per campaign — see [`Campaign::with_exploration_cache`]).
    pub fn meta_cache(&self) -> &MetaCache {
        &self.meta_cache
    }

    /// Load statistics of the configured corpus file, when one is
    /// attached (`None` for no corpus or a detached overlay).
    pub fn corpus_load_stats(&self) -> Option<&igjit_corpus::LoadStats> {
        self.corpus.as_ref()?.file.as_ref().map(|(_, _, stats)| stats)
    }

    /// Overrides the worker-thread count after construction. The serve
    /// mode adjusts this per request without rebuilding the caches.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads.max(1);
    }

    /// Injects precomputed outcomes into the warm overlay without
    /// binding a corpus file. The sharded campaign's parent feeds its
    /// workers' results through this, turning the merge into an
    /// ordinary (fully warm) sequential sweep — which is exactly why
    /// the merged report is byte-identical to a sequential run.
    pub fn preload_outcomes(
        &mut self,
        outcomes: impl IntoIterator<Item = ((Target, InstrUnderTest), InstructionOutcome)>,
    ) {
        let state = self.corpus.get_or_insert_with(|| Arc::new(CorpusState::detached()));
        let mut recorded = state.recorded.lock().unwrap_or_else(|e| e.into_inner());
        recorded.extend(outcomes);
    }

    /// Runs the pipeline for one instruction × target (or answers it
    /// from the warm overlay) — the sharded campaign's worker entry
    /// point.
    pub fn outcome_for(&self, instr: InstrUnderTest, target: Target) -> InstructionOutcome {
        self.run_one(instr, target).1
    }

    /// Writes the caches and recorded outcomes back to the configured
    /// corpus file: atomically (temp file + rename), and not at all
    /// when the encoded corpus is unchanged. `None` when no corpus
    /// file is configured.
    pub fn save_corpus(&self) -> Option<std::io::Result<igjit_corpus::SaveOutcome>> {
        let state = self.corpus.as_ref()?;
        let (path, fps, _) = state.file.as_ref()?;
        let explorations = self
            .cache
            .snapshot()
            .into_iter()
            .map(|(k, v)| (k, (*v).clone()))
            .collect();
        let code = self.code_cache.snapshot();
        let mut merged = state.loaded.clone();
        {
            let recorded = state.recorded.lock().unwrap_or_else(|e| e.into_inner());
            merged.extend(recorded.iter().map(|(k, v)| (*k, v.clone())));
        }
        let corpus = igjit_corpus::Corpus {
            explorations,
            code,
            outcomes: merged.into_iter().collect(),
        };
        Some(igjit_corpus::save(path, &corpus, fps))
    }

    /// Registers a progress callback, invoked from worker threads
    /// after each instruction completes.
    pub fn on_progress(mut self, callback: impl Fn(&Progress) + Send + Sync + 'static) -> Self {
        self.on_progress = Some(Arc::new(callback));
        self
    }

    /// Differentially tests one bytecode instruction against one tier.
    pub fn test_bytecode_instruction(
        &self,
        instr: Instruction,
        kind: CompilerKind,
    ) -> InstructionOutcome {
        self.run_one(InstrUnderTest::Bytecode(instr), Target::Bytecode(kind)).1
    }

    /// Differentially tests one native method against the template
    /// compiler.
    pub fn test_native_method(&self, id: NativeMethodId) -> InstructionOutcome {
        self.run_one(InstrUnderTest::Native(id), Target::NativeMethods).1
    }

    /// Runs the whole pipeline for one instruction, reusing (and
    /// feeding) the shared exploration and code caches.
    fn run_one(&self, instr: InstrUnderTest, target: Target) -> (TimingInfo, InstructionOutcome) {
        let t0 = Instant::now();
        // Warm path: a corpus outcome replays verbatim — no explore,
        // no compile, no simulation. The lookup cost lands in `other`.
        // Meta-tier outcomes participate like any other target's: the
        // corpus outcome fingerprint mixes in the partial evaluator's
        // source hash, so a stale evaluator degrades to a cold run.
        if let Some(state) = &self.corpus {
            if let Some(outcome) = state.lookup(target, instr) {
                let elapsed = t0.elapsed();
                let stages = StageTimes { other: elapsed, ..StageTimes::default() };
                let info = TimingInfo {
                    elapsed,
                    stages,
                    solver: SessionStats::default(),
                    trail: TrailStats::default(),
                    cache_hit: false,
                    corpus_hit: Some(true),
                };
                return (info, outcome);
            }
        }
        let mut explorer = Explorer::new();
        explorer.hash_cons = self.config.hash_cons;
        explorer.negation_threads = self.config.negate_threads;
        explorer.solver_trail = self.config.solver_trail;
        let lookup = self.cache.get_or_explore_with(
            &explorer,
            instr,
            self.config.probes,
            self.config.family_share,
        );
        let (outcome, mut stages, mut solver, mut trail) = test_instruction_with(
            instr,
            target,
            &self.config.isas,
            self.config.probes,
            &lookup.exploration,
            ExploreCost {
                total: lookup.explore_time,
                walk_run: lookup.walk_run,
                probe_solve: lookup.probe_solve,
            },
            &self.code_cache,
            &self.meta_cache,
            self.config.heap_snapshot,
            self.config.predecode,
            self.config.interp_predecode,
            self.config.solver_trail,
        );
        // Exploration solver work is charged once, to the run that
        // actually explored; a cache hit did no exploration solving.
        if !lookup.hit {
            solver.merge(&lookup.exploration.solver);
            trail.merge(&lookup.exploration.trail);
        }
        let elapsed = t0.elapsed();
        // Whatever the named stages didn't cover — cache lookup,
        // curation bookkeeping, verdict assembly — lands in `other`,
        // so the per-item stage sum equals the item's wall clock.
        stages.other += elapsed.saturating_sub(stages.total());
        let corpus_hit = match &self.corpus {
            Some(state) => {
                state.record(target, instr, outcome.clone());
                Some(false)
            }
            None => None,
        };
        (TimingInfo { elapsed, stages, solver, trail, cache_hit: lookup.hit, corpus_hit }, outcome)
    }

    /// Runs a batch of instructions, sequentially or on a lock-free
    /// worker pool, preserving input order in the outputs.
    ///
    /// Parallel scheme: workers claim the next item off an atomic
    /// cursor (dynamic load balancing — per-instruction cost varies by
    /// orders of magnitude) and send `(index, result)` through a
    /// channel; the scope's owner thread writes each result into its
    /// input-order slot. No mutex anywhere, and the report content is
    /// identical at any thread count because both the work (pure per
    /// item) and the assembly order (by index) are scheduling-independent.
    fn run_batch(&self, label: String, items: Vec<WorkItem>) -> CampaignReport {
        let threads = self.config.threads.clamp(1, items.len().max(1));
        let wall0 = Instant::now();
        let compile_lookups0 = (self.code_cache.hits(), self.code_cache.misses());
        let family0 = (self.cache.family_hits(), self.cache.family_fallbacks());
        let done = AtomicUsize::new(0);
        let total = items.len();
        let report_progress = |name: &str| {
            if let Some(cb) = &self.on_progress {
                cb(&Progress {
                    row: label.clone(),
                    completed: done.fetch_add(1, Ordering::Relaxed) + 1,
                    total,
                    current: name.to_string(),
                });
            }
        };
        let run_one = |(name, is_native, instr, target): &WorkItem|
         -> (TimingSample, InstructionOutcome, SessionStats, TrailStats) {
            let (mut info, outcome) = self.run_one(*instr, *target);
            // Progress reporting is a stderr write + flush per
            // instruction; charge it to its own stage so it can't
            // masquerade as pipeline residual.
            let t_progress = Instant::now();
            report_progress(name);
            let dt = t_progress.elapsed();
            info.stages.progress += dt;
            info.elapsed += dt;
            (
                TimingSample {
                    label: name.clone(),
                    is_native: *is_native,
                    elapsed: info.elapsed,
                    paths: outcome.paths_found,
                    stages: info.stages,
                    cache_hit: info.cache_hit,
                    corpus_hit: info.corpus_hit,
                },
                outcome,
                info.solver,
                info.trail,
            )
        };
        // Per-worker self-time sums: each item's stages are charged to
        // the worker that ran it, so the per-stage maximum over workers
        // is the batch's critical path (no skew from summing across
        // concurrent workers).
        let mut worker_stages = vec![StageTimes::default(); threads];
        let results: Vec<(TimingSample, InstructionOutcome, SessionStats, TrailStats)> =
            if threads <= 1 {
            items
                .iter()
                .map(|item| {
                    let r = run_one(item);
                    worker_stages[0].merge(&r.0.stages);
                    r
                })
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let mut slots: Vec<Option<(TimingSample, InstructionOutcome, SessionStats, TrailStats)>> =
                (0..items.len()).map(|_| None).collect();
            std::thread::scope(|s| {
                let (tx, rx) = mpsc::channel();
                let items = &items;
                let next = &next;
                let run_one = &run_one;
                for wid in 0..threads {
                    let tx = tx.clone();
                    s.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        // A send only fails if the collector is gone,
                        // which only happens when the scope is
                        // unwinding already.
                        if tx.send((i, wid, run_one(&items[i]))).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                for (i, wid, result) in rx {
                    worker_stages[wid].merge(&result.0.stages);
                    slots[i] = Some(result);
                }
            });
            slots.into_iter().map(|s| s.expect("every slot filled")).collect()
        };
        let mut row = CampaignRow { label, ..CampaignRow::default() };
        let mut outcomes = Vec::with_capacity(results.len());
        let mut timings = Vec::with_capacity(results.len());
        let mut metrics = Metrics { threads, instructions: results.len(), ..Metrics::default() };
        for ws in &worker_stages {
            metrics.stages_max.merge_max(ws);
        }
        for (t, o, solver, trail) in results {
            row.absorb(&o);
            metrics.stages.merge(&t.stages);
            metrics.solver.merge(&solver);
            metrics.trail.merge(&trail);
            metrics.witness_errors += o.witness_errors;
            metrics.oracle_panics += o.oracle_panics;
            metrics.snapshot.merge(&o.snapshot);
            match t.corpus_hit {
                // A warm replay never consulted the exploration cache,
                // so it is neither a cache hit nor a miss.
                Some(true) => metrics.corpus_hits += 1,
                Some(false) | None => {
                    if t.corpus_hit.is_some() {
                        metrics.corpus_misses += 1;
                    }
                    if t.cache_hit {
                        metrics.cache_hits += 1;
                    } else {
                        metrics.cache_misses += 1;
                    }
                }
            }
            timings.push(t);
            outcomes.push(o);
        }
        metrics.compile_hits = self.code_cache.hits() - compile_lookups0.0;
        metrics.compile_misses = self.code_cache.misses() - compile_lookups0.1;
        metrics.family_hits = self.cache.family_hits() - family0.0;
        metrics.family_fallbacks = self.cache.family_fallbacks() - family0.1;
        metrics.wall_clock = wall0.elapsed();
        // Batch-level driver overhead (scheduling, result collection,
        // report assembly) goes to `other` so the stage accounting sums
        // to the wall clock instead of silently dropping it. On a
        // sequential batch the CPU-side sum and the critical path are
        // the same thing; in parallel only the critical path can be
        // meaningfully squared with the wall clock.
        if threads <= 1 {
            let leftover = metrics.wall_clock.saturating_sub(metrics.stages.total());
            metrics.stages.other += leftover;
            metrics.stages_max.other += leftover;
        } else {
            let leftover = metrics.wall_clock.saturating_sub(metrics.stages_max.total());
            metrics.stages_max.other += leftover;
        }
        CampaignReport { row, outcomes, timings, metrics }
    }

    /// Runs the native-method row of Table 2: all 112 primitives.
    pub fn run_native_methods(&self) -> CampaignReport {
        let items = native_catalog()
            .into_iter()
            .map(|spec| {
                (spec.name.clone(), true, InstrUnderTest::Native(spec.id), Target::NativeMethods)
            })
            .collect();
        self.run_batch(Target::NativeMethods.label().to_string(), items)
    }

    /// Runs one bytecode-compiler row of Table 2: the whole
    /// instruction catalog against one tier.
    pub fn run_bytecodes(&self, kind: CompilerKind) -> CampaignReport {
        let items = instruction_catalog()
            .into_iter()
            .map(|spec| {
                (
                    format!("{:?}", spec.instruction),
                    false,
                    InstrUnderTest::Bytecode(spec.instruction),
                    Target::Bytecode(kind),
                )
            })
            .collect();
        self.run_batch(kind.name().to_string(), items)
    }

    /// Runs the meta-compiled row of Table 2 (tier 5, engine v9): the
    /// whole instruction catalog against the partial evaluator derived
    /// from the interpreter's step functions. Pairs the evaluator
    /// refuses trampoline through the interpreter, so the row is total;
    /// [`CampaignRow::meta_coverage`] reports the compiled fraction.
    pub fn run_meta_compiled(&self) -> CampaignReport {
        let items = instruction_catalog()
            .into_iter()
            .map(|spec| {
                (
                    format!("{:?}", spec.instruction),
                    false,
                    InstrUnderTest::Bytecode(spec.instruction),
                    Target::MetaCompiled,
                )
            })
            .collect();
        self.run_batch(Target::MetaCompiled.label().to_string(), items)
    }

    /// The full Table 2: native methods, the three bytecode tiers and
    /// (unless [`CampaignConfig::meta_tier`] is off) the meta-compiled
    /// tier.
    ///
    /// Thanks to the shared exploration cache, each bytecode
    /// instruction is explored once for the first tier and reused by
    /// the others.
    pub fn run_all(&self) -> Vec<CampaignReport> {
        let mut reports = vec![self.run_native_methods()];
        for kind in CompilerKind::ALL {
            reports.push(self.run_bytecodes(kind));
        }
        if self.config.meta_tier {
            reports.push(self.run_meta_compiled());
        }
        reports
    }
}

/// Timing facts `run_one` hands to `run_batch`.
struct TimingInfo {
    elapsed: Duration,
    stages: StageTimes,
    solver: SessionStats,
    trail: TrailStats,
    cache_hit: bool,
    corpus_hit: Option<bool>,
}

/// Sums the per-row metrics of a full campaign run.
pub fn aggregate_metrics(reports: &[CampaignReport]) -> Metrics {
    let mut total = Metrics::default();
    for r in reports {
        total.merge(&r.metrics);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_on_one_bytecode() {
        let c = Campaign::quick();
        let o = c.test_bytecode_instruction(Instruction::LessThan, CompilerKind::StackToRegister);
        assert!(o.paths_found >= 3);
        // The float comparison fast path differs (the interpreter
        // inlines it, the compiler sends); it shows up once per
        // comparison outcome (true/false), so one or two paths.
        assert!((1..=2).contains(&o.difference_count()), "{:?}", o.verdicts);
    }

    #[test]
    fn quick_campaign_on_one_native() {
        let c = Campaign::quick();
        let o = c.test_native_method(NativeMethodId(2));
        assert!(o.curated >= 3);
        assert_eq!(o.difference_count(), 0);
    }

    #[test]
    fn report_cause_aggregation() {
        let c = Campaign::quick();
        let mut row = CampaignRow { label: "t".into(), ..Default::default() };
        let o = c.test_native_method(NativeMethodId(14));
        row.absorb(&o);
        let report = CampaignReport {
            row,
            outcomes: vec![o],
            timings: vec![],
            metrics: Metrics::default(),
        };
        let by_cat = report.causes_by_category();
        let behavioural = by_cat
            .iter()
            .find(|(c, _)| *c == DefectCategory::BehaviouralDifference)
            .unwrap();
        assert!(behavioural.1 >= 1);
    }

    #[test]
    fn repeated_tests_hit_the_exploration_cache() {
        let c = Campaign::quick();
        let _ = c.test_bytecode_instruction(Instruction::Pop, CompilerKind::StackToRegister);
        assert_eq!(c.cache().misses(), 1);
        let _ = c.test_bytecode_instruction(Instruction::Pop, CompilerKind::SimpleStackBased);
        assert_eq!(c.cache().hits(), 1, "second tier reuses the exploration");
    }

    #[test]
    fn progress_callback_sees_every_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let c = Campaign::new(CampaignConfig {
            isas: vec![Isa::X86ish],
            probes: false,
            threads: 2,
            ..CampaignConfig::default()
        })
        .on_progress(move |p| {
            seen2.fetch_add(1, Ordering::Relaxed);
            assert!(p.completed <= p.total);
        });
        let report = c.run_native_methods();
        assert_eq!(seen.load(Ordering::Relaxed), report.row.tested_instructions);
    }

    #[test]
    fn parallel_report_is_bit_identical_to_sequential() {
        // The lock-free sweep assembles results in input order, so the
        // report must not depend on the worker count: same rows, same
        // cause sets, same outcome order at threads = 1 and 4.
        let run = |threads: usize| {
            Campaign::new(CampaignConfig {
                isas: vec![Isa::X86ish, Isa::Arm32ish],
                probes: true,
                threads,
                ..CampaignConfig::default()
            })
            .run_native_methods()
        };
        let (seq, par) = (run(1), run(4));
        assert_eq!(seq.row, par.row);
        assert_eq!(seq.causes(), par.causes());
        assert_eq!(seq.outcomes.len(), par.outcomes.len());
        for (a, b) in seq.outcomes.iter().zip(&par.outcomes) {
            assert_eq!(a.causes(), b.causes());
            assert_eq!(a.paths_found, b.paths_found);
            assert_eq!(a.curated, b.curated);
            assert_eq!(a.witness_errors, b.witness_errors);
        }
    }

    #[test]
    fn metrics_json_is_well_formed_enough() {
        let m = Metrics {
            threads: 4,
            instructions: 7,
            cache_hits: 3,
            cache_misses: 4,
            compile_hits: 6,
            compile_misses: 2,
            wall_clock: Duration::from_millis(12),
            ..Metrics::default()
        };
        let j = m.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"threads\":4"));
        assert!(j.contains("\"hit_rate\":0.4286"));
        assert!(j.contains("\"compile_cache\":{\"hits\":6,\"misses\":2,\"hit_rate\":0.7500}"));
        assert!(j.contains("\"corpus\":{\"hits\":0,\"misses\":0}"));
        assert!(j.contains("\"progress\":"));
        assert!(j.contains("\"stages_max_ms\""));
        assert!(j.contains("\"solver\""));
        assert!(j.contains(
            "\"trail\":{\"marks\":0,\"undone_ops\":0,\"clones_avoided\":0,\
             \"pool_hits\":0,\"pool_misses\":0,\"pool_hit_rate\":0.0000}"
        ));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
