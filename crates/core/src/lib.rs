//! # igjit — interpreter-guided differential JIT compiler unit testing
//!
//! A from-scratch Rust reproduction of *"Interpreter-guided
//! Differential JIT Compiler Unit Testing"* (Polito, Tesone, Ducasse —
//! PLDI 2022): concolic meta-interpretation of a VM bytecode
//! interpreter discovers every execution path of every VM instruction;
//! the discovered path constraints build concrete VM frames; the same
//! instructions are compiled by four JIT front-ends and executed on a
//! machine simulator; differences in observable behaviour expose
//! compiler (and interpreter!) defects.
//!
//! The workspace layers, bottom-up:
//!
//! | crate | role |
//! |-------|------|
//! | [`igjit_heap`] | 32-bit tagged object memory |
//! | [`igjit_bytecode`] | Sista-style bytecode set + compiled methods |
//! | [`igjit_interp`] | the interpreter (the *executable specification*) + 112 native methods |
//! | [`igjit_solver`] | constraint solver over semantic VM predicates |
//! | [`igjit_concolic`] | tracing context, path explorer, frame materializer |
//! | [`igjit_machine`] | CPU simulator, two ISAs |
//! | [`igjit_jit`] | CogRTL-ish IR, 3 bytecode tiers + native templates, 2 back-ends |
//! | [`igjit_difftest`] | oracle/compiled runs, comparison, defect classification |
//!
//! This crate is the front door: [`Campaign`] runs the paper's whole
//! evaluation (§5) and produces the Table 2 rows, Table 3 defect
//! counts and the per-instruction data behind Figures 5–7.
//!
//! ## Quickstart
//!
//! ```
//! use igjit::{Campaign, Target, CompilerKind};
//!
//! // Test one instruction against the production bytecode tier.
//! let campaign = Campaign::quick();
//! let outcome = campaign.test_bytecode_instruction(
//!     igjit::Instruction::Add,
//!     CompilerKind::StackToRegister,
//! );
//! assert!(outcome.paths_found >= 5);
//! // The float fast path is inlined by the interpreter but compiled
//! // as a send — a genuine "optimisation difference" (§5.3).
//! assert_eq!(outcome.difference_count(), 1);
//! # let _ = Target::NativeMethods;
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod campaign;
pub mod env;
pub mod report;
pub mod testgen;

pub use campaign::{aggregate_metrics, default_threads, Campaign, CampaignConfig, CampaignReport,
                   Metrics, Progress, TimingSample};
pub use testgen::{GeneratedSuite, GeneratedTest, SuiteReport, TestResult};

// The full substrate, re-exported for downstream users.
pub use igjit_bytecode::{instruction_catalog, Family, Instruction, InstructionSpec,
                         SpecialSelector};
pub use igjit_concolic::{ExplorationCache, ExplorationResult, Explorer, ExploredPath,
                         InstrUnderTest, PathOutcome};
pub use igjit_difftest::{test_instruction, test_instruction_with, CampaignRow, CauseKey,
                         DefectCategory, InstructionOutcome, PathVerdict, StageTimes, Target,
                         Verdict};
pub use igjit_heap::{ClassIndex, ObjectMemory, Oop};
pub use igjit_interp::{native_catalog, ExitCondition, Image, NativeGroup, NativeMethodId,
                       NativeMethodSpec};
pub use igjit_jit::CompilerKind;
pub use igjit_machine::Isa;
pub use igjit_mutate as mutate;
pub use igjit_mutate::{FaultInjector, MutantGuard, MutantId, MutationOp};
