//! Strict parsing of the harness's `IGJIT_*` environment knobs.
//!
//! The harness binaries used to read their knobs leniently: an
//! unparseable `IGJIT_THREADS` silently fell back to the default, and
//! a typo like `IGJIT_CODECACHE=0` was ignored outright — so a cache
//! ablation could quietly measure the cached configuration. This
//! module is the single shared parser: it scans the whole environment
//! for `IGJIT_`-prefixed names, rejects unknown ones, and rejects
//! malformed values instead of guessing.

use std::ffi::OsString;

use igjit_mutate::MutantId;

/// Every environment knob the harness understands.
pub const KNOWN_VARS: &[&str] = &[
    "IGJIT_THREADS",
    "IGJIT_CODE_CACHE",
    "IGJIT_HEAP_SNAPSHOT",
    "IGJIT_PREDECODE",
    "IGJIT_INTERP_PREDECODE",
    "IGJIT_HASH_CONS",
    "IGJIT_FAMILY_SHARE",
    "IGJIT_TIER5",
    "IGJIT_SOLVER_TRAIL",
    "IGJIT_NEGATE_THREADS",
    "IGJIT_MUTANT",
    "IGJIT_CORPUS",
    "IGJIT_CAMPAIGN_JOBS",
];

/// Parsed knob values. `None` means the variable was not set; the
/// `*_enabled`/`*_or_default` accessors apply the documented defaults.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EnvKnobs {
    /// `IGJIT_THREADS`: worker threads for the per-instruction sweep.
    pub threads: Option<usize>,
    /// `IGJIT_CODE_CACHE`: whether compiled test methods are cached.
    pub code_cache: Option<bool>,
    /// `IGJIT_HEAP_SNAPSHOT`: whether materialized heaps are sealed
    /// once and replayed by copy-on-write restore.
    pub heap_snapshot: Option<bool>,
    /// `IGJIT_PREDECODE`: whether compiled artifacts are predecoded
    /// once per code-cache entry and replayed through a persistent
    /// simulator session.
    pub predecode: Option<bool>,
    /// `IGJIT_INTERP_PREDECODE`: whether *interpreter* runs go through
    /// the predecoded pipeline (engine v8) — per-catalog-entry cached
    /// program views for oracle runs, step functions resolved once per
    /// sequence/method instead of per step.
    pub interp_predecode: Option<bool>,
    /// `IGJIT_HASH_CONS`: whether the explorer's solver sessions
    /// hash-cons constraints and key path dedup on interned ids.
    pub hash_cons: Option<bool>,
    /// `IGJIT_FAMILY_SHARE`: whether one exploration per instruction
    /// family is replayed for every member instead of exploring each
    /// opcode from scratch.
    pub family_share: Option<bool>,
    /// `IGJIT_TIER5`: whether the meta-compiled tier (#5, engine v9)
    /// runs as a fifth Table 2 row. Tiers 1–4 rows are byte-identical
    /// either way.
    pub tier5: Option<bool>,
    /// `IGJIT_SOLVER_TRAIL`: whether solver sessions backtrack scopes
    /// by undo log (engine v10) instead of per-scope store clones.
    /// Rows are identical either way.
    pub solver_trail: Option<bool>,
    /// `IGJIT_NEGATE_THREADS`: threads negating sibling subtrees of
    /// one instruction's path tree in parallel (1 = sequential).
    pub negate_threads: Option<usize>,
    /// `IGJIT_MUTANT`: a mutation operator to arm for the whole
    /// process (id or kebab-case name from the `igjit-mutate` catalog).
    pub mutant: Option<MutantId>,
    /// `IGJIT_CORPUS`: path of the persistent campaign corpus file
    /// (loaded before the sweep, written back after).
    pub corpus: Option<std::path::PathBuf>,
    /// `IGJIT_CAMPAIGN_JOBS`: worker *processes* sharding the main
    /// campaign (1 = in-process).
    pub campaign_jobs: Option<usize>,
}

impl EnvKnobs {
    /// Worker threads: the knob, or the machine's parallelism.
    pub fn threads_or_default(&self) -> usize {
        self.threads.unwrap_or_else(crate::default_threads)
    }

    /// Code cache: the knob, default on.
    pub fn code_cache_enabled(&self) -> bool {
        self.code_cache.unwrap_or(true)
    }

    /// Heap snapshots: the knob, default on.
    pub fn heap_snapshot_enabled(&self) -> bool {
        self.heap_snapshot.unwrap_or(true)
    }

    /// Predecoded replay: the knob, default on.
    pub fn predecode_enabled(&self) -> bool {
        self.predecode.unwrap_or(true)
    }

    /// Predecoded interpreter pipeline: the knob, default on.
    pub fn interp_predecode_enabled(&self) -> bool {
        self.interp_predecode.unwrap_or(true)
    }

    /// Hash-consed constraints: the knob, default on again since
    /// engine v8 (the seeded-`FxHash` intern tables flipped the
    /// engine-v7 ablation; see EXPERIMENTS.md).
    pub fn hash_cons_enabled(&self) -> bool {
        self.hash_cons.unwrap_or(true)
    }

    /// Family-shared exploration: the knob, default on.
    pub fn family_share_enabled(&self) -> bool {
        self.family_share.unwrap_or(true)
    }

    /// Meta-compiled tier: the knob, default on.
    pub fn tier5_enabled(&self) -> bool {
        self.tier5.unwrap_or(true)
    }

    /// Trail-based solver backtracking: the knob, default on.
    pub fn solver_trail_enabled(&self) -> bool {
        self.solver_trail.unwrap_or(true)
    }

    /// Parallel path negation: the knob, default 1 (sequential).
    pub fn negate_threads_or_default(&self) -> usize {
        self.negate_threads.unwrap_or(1)
    }

    /// Campaign worker processes: the knob, default 1 (in-process).
    pub fn campaign_jobs_or_default(&self) -> usize {
        self.campaign_jobs.unwrap_or(1)
    }
}

fn parse_bool(name: &str, value: &str) -> Result<bool, String> {
    match value.to_ascii_lowercase().as_str() {
        "1" | "on" | "true" | "yes" => Ok(true),
        "0" | "off" | "false" | "no" => Ok(false),
        _ => Err(format!(
            "{name}={value:?} is not a boolean (use 0/1, on/off, true/false or yes/no)"
        )),
    }
}

fn parse_threads(value: &str) -> Result<usize, String> {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "IGJIT_THREADS={value:?} is not a positive integer"
        )),
    }
}

/// Parses knobs from an explicit `(name, value)` iterator, as
/// [`std::env::vars_os`] yields. Split out from [`parse_env`] so tests
/// can exercise the parser without mutating the process environment.
pub fn parse_vars(
    vars: impl IntoIterator<Item = (OsString, OsString)>,
) -> Result<EnvKnobs, String> {
    let mut knobs = EnvKnobs::default();
    for (name_os, value_os) in vars {
        let name = name_os.to_string_lossy();
        if !name.starts_with("IGJIT_") {
            continue;
        }
        let value = value_os.to_str().ok_or_else(|| {
            format!("{name} has a value that is not valid UTF-8")
        })?;
        match name.as_ref() {
            "IGJIT_THREADS" => knobs.threads = Some(parse_threads(value)?),
            "IGJIT_CODE_CACHE" => {
                knobs.code_cache = Some(parse_bool("IGJIT_CODE_CACHE", value)?)
            }
            "IGJIT_HEAP_SNAPSHOT" => {
                knobs.heap_snapshot = Some(parse_bool("IGJIT_HEAP_SNAPSHOT", value)?)
            }
            "IGJIT_PREDECODE" => {
                knobs.predecode = Some(parse_bool("IGJIT_PREDECODE", value)?)
            }
            "IGJIT_INTERP_PREDECODE" => {
                knobs.interp_predecode = Some(parse_bool("IGJIT_INTERP_PREDECODE", value)?)
            }
            "IGJIT_HASH_CONS" => {
                knobs.hash_cons = Some(parse_bool("IGJIT_HASH_CONS", value)?)
            }
            "IGJIT_FAMILY_SHARE" => {
                knobs.family_share = Some(parse_bool("IGJIT_FAMILY_SHARE", value)?)
            }
            "IGJIT_TIER5" => knobs.tier5 = Some(parse_bool("IGJIT_TIER5", value)?),
            "IGJIT_SOLVER_TRAIL" => {
                knobs.solver_trail = Some(parse_bool("IGJIT_SOLVER_TRAIL", value)?)
            }
            "IGJIT_NEGATE_THREADS" => {
                knobs.negate_threads = Some(match value.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        return Err(format!(
                            "IGJIT_NEGATE_THREADS={value:?} is not a positive integer"
                        ))
                    }
                })
            }
            "IGJIT_MUTANT" => {
                knobs.mutant =
                    Some(igjit_mutate::parse(value).map_err(|e| format!("IGJIT_MUTANT: {e}"))?)
            }
            "IGJIT_CORPUS" => {
                if value.is_empty() {
                    return Err("IGJIT_CORPUS is set but empty (expected a file path)".into());
                }
                knobs.corpus = Some(std::path::PathBuf::from(value));
            }
            "IGJIT_CAMPAIGN_JOBS" => {
                knobs.campaign_jobs = Some(match value.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        return Err(format!(
                            "IGJIT_CAMPAIGN_JOBS={value:?} is not a positive integer"
                        ))
                    }
                })
            }
            _ => {
                return Err(format!(
                    "unknown environment variable {name} (known IGJIT_* knobs: {})",
                    KNOWN_VARS.join(", ")
                ))
            }
        }
    }
    Ok(knobs)
}

/// Parses the process environment. Harness binaries call this once at
/// startup and abort on `Err` — a misspelled knob must not silently
/// run the default configuration.
pub fn parse_env() -> Result<EnvKnobs, String> {
    parse_vars(std::env::vars_os())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(pairs: &[(&str, &str)]) -> Vec<(OsString, OsString)> {
        pairs.iter().map(|&(n, v)| (OsString::from(n), OsString::from(v))).collect()
    }

    #[test]
    fn empty_environment_yields_defaults() {
        let k = parse_vars(vars(&[("PATH", "/usr/bin"), ("HOME", "/root")])).unwrap();
        assert_eq!(k, EnvKnobs::default());
        assert!(k.code_cache_enabled());
        assert!(k.heap_snapshot_enabled());
        assert!(k.predecode_enabled());
        assert!(k.interp_predecode_enabled());
        assert!(k.hash_cons_enabled(), "hash-consing is back on by default since engine v8");
        assert!(k.family_share_enabled());
        assert!(k.tier5_enabled(), "the meta tier is on by default (engine v9)");
        assert!(k.solver_trail_enabled(), "the solver trail is on by default (engine v10)");
        assert_eq!(k.negate_threads_or_default(), 1);
        assert_eq!(k.campaign_jobs_or_default(), 1);
        assert!(k.threads_or_default() >= 1);
        assert!(k.mutant.is_none());
        assert!(k.corpus.is_none());
    }

    #[test]
    fn all_knobs_parse() {
        let k = parse_vars(vars(&[
            ("IGJIT_THREADS", "3"),
            ("IGJIT_CODE_CACHE", "off"),
            ("IGJIT_HEAP_SNAPSHOT", "1"),
            ("IGJIT_PREDECODE", "no"),
            ("IGJIT_INTERP_PREDECODE", "off"),
            ("IGJIT_HASH_CONS", "off"),
            ("IGJIT_FAMILY_SHARE", "0"),
            ("IGJIT_TIER5", "off"),
            ("IGJIT_SOLVER_TRAIL", "0"),
            ("IGJIT_NEGATE_THREADS", "4"),
            ("IGJIT_MUTANT", "flip-compare-cond"),
            ("IGJIT_CORPUS", "bench/campaign.corpus"),
            ("IGJIT_CAMPAIGN_JOBS", "2"),
        ]))
        .unwrap();
        assert_eq!(k.threads, Some(3));
        assert_eq!(k.code_cache, Some(false));
        assert_eq!(k.heap_snapshot, Some(true));
        assert_eq!(k.predecode, Some(false));
        assert!(!k.predecode_enabled());
        assert_eq!(k.interp_predecode, Some(false));
        assert!(!k.interp_predecode_enabled());
        assert!(!k.hash_cons_enabled());
        assert!(!k.family_share_enabled());
        assert_eq!(k.tier5, Some(false));
        assert!(!k.tier5_enabled());
        assert_eq!(k.solver_trail, Some(false));
        assert!(!k.solver_trail_enabled());
        assert_eq!(k.negate_threads_or_default(), 4);
        assert_eq!(k.mutant, Some(igjit_mutate::ops::FLIP_COMPARE_COND));
        assert_eq!(k.corpus.as_deref(), Some(std::path::Path::new("bench/campaign.corpus")));
        assert_eq!(k.campaign_jobs_or_default(), 2);
    }

    #[test]
    fn unknown_igjit_vars_are_rejected() {
        let err = parse_vars(vars(&[("IGJIT_CODECACHE", "0")])).unwrap_err();
        assert!(err.contains("IGJIT_CODECACHE"), "{err}");
        assert!(err.contains("IGJIT_CODE_CACHE"), "error lists the known knobs: {err}");
    }

    #[test]
    fn malformed_values_are_rejected() {
        assert!(parse_vars(vars(&[("IGJIT_THREADS", "0")])).is_err());
        assert!(parse_vars(vars(&[("IGJIT_THREADS", "many")])).is_err());
        assert!(parse_vars(vars(&[("IGJIT_THREADS", "")])).is_err());
        assert!(parse_vars(vars(&[("IGJIT_CODE_CACHE", "maybe")])).is_err());
        assert!(parse_vars(vars(&[("IGJIT_HEAP_SNAPSHOT", "2")])).is_err());
        assert!(parse_vars(vars(&[("IGJIT_PREDECODE", "sometimes")])).is_err());
        assert!(parse_vars(vars(&[("IGJIT_INTERP_PREDECODE", "perhaps")])).is_err());
        assert!(parse_vars(vars(&[("IGJIT_HASH_CONS", "2")])).is_err());
        assert!(parse_vars(vars(&[("IGJIT_FAMILY_SHARE", "maybe")])).is_err());
        assert!(parse_vars(vars(&[("IGJIT_NEGATE_THREADS", "0")])).is_err());
        assert!(parse_vars(vars(&[("IGJIT_NEGATE_THREADS", "lots")])).is_err());
        assert!(parse_vars(vars(&[("IGJIT_MUTANT", "no-such-operator")])).is_err());
        assert!(parse_vars(vars(&[("IGJIT_MUTANT", "0")])).is_err());
        assert!(parse_vars(vars(&[("IGJIT_CORPUS", "")])).is_err());
        assert!(parse_vars(vars(&[("IGJIT_CAMPAIGN_JOBS", "0")])).is_err());
        assert!(parse_vars(vars(&[("IGJIT_CAMPAIGN_JOBS", "two")])).is_err());
    }

    #[test]
    fn every_boolean_knob_rejects_garbage_and_names_itself() {
        // The strict-parse contract, table-driven over every boolean
        // knob: near-miss spellings ("yess"), stray numerals and empty
        // values are fatal, and the error names the offending variable
        // so the fix is obvious from the message alone.
        const BOOL_KNOBS: &[&str] = &[
            "IGJIT_CODE_CACHE",
            "IGJIT_HEAP_SNAPSHOT",
            "IGJIT_PREDECODE",
            "IGJIT_INTERP_PREDECODE",
            "IGJIT_HASH_CONS",
            "IGJIT_FAMILY_SHARE",
            "IGJIT_TIER5",
            "IGJIT_SOLVER_TRAIL",
        ];
        for name in BOOL_KNOBS {
            assert!(KNOWN_VARS.contains(name), "{name} missing from KNOWN_VARS");
            for bad in ["yess", "2", "enabled", ""] {
                let err = parse_vars(vars(&[(name, bad)]))
                    .expect_err(&format!("{name}={bad:?} must be rejected"));
                assert!(err.contains(name), "error must name {name}: {err}");
            }
            for (good, want) in [("yes", true), ("OFF", false)] {
                let k = parse_vars(vars(&[(name, good)])).unwrap();
                let parsed = match *name {
                    "IGJIT_CODE_CACHE" => k.code_cache,
                    "IGJIT_HEAP_SNAPSHOT" => k.heap_snapshot,
                    "IGJIT_PREDECODE" => k.predecode,
                    "IGJIT_INTERP_PREDECODE" => k.interp_predecode,
                    "IGJIT_HASH_CONS" => k.hash_cons,
                    "IGJIT_FAMILY_SHARE" => k.family_share,
                    "IGJIT_TIER5" => k.tier5,
                    "IGJIT_SOLVER_TRAIL" => k.solver_trail,
                    _ => unreachable!(),
                };
                assert_eq!(parsed, Some(want), "{name}={good}");
            }
        }
    }

    #[test]
    fn booleans_accept_both_spellings_case_insensitively() {
        for on in ["1", "on", "TRUE", "Yes"] {
            let k = parse_vars(vars(&[("IGJIT_CODE_CACHE", on)])).unwrap();
            assert_eq!(k.code_cache, Some(true), "{on}");
        }
        for off in ["0", "OFF", "false", "no"] {
            let k = parse_vars(vars(&[("IGJIT_HEAP_SNAPSHOT", off)])).unwrap();
            assert_eq!(k.heap_snapshot, Some(false), "{off}");
        }
    }

    #[test]
    fn mutants_parse_by_id_too() {
        let k = parse_vars(vars(&[("IGJIT_MUTANT", "106")])).unwrap();
        assert_eq!(k.mutant, Some(igjit_mutate::ops::FLIP_COMPARE_COND));
    }
}
