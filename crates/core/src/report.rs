//! Textual rendering of the evaluation artefacts (Tables 1–3,
//! Figures 5–7).

use crate::campaign::{CampaignReport, TimingSample};
use igjit_difftest::DefectCategory;

/// Renders the Table 2 header.
pub fn table2_header() -> String {
    format!(
        "{:<34} {:>8} {:>8} {:>8} {:>16}",
        "Compiler", "#Instr", "#Paths", "#Curated", "#Differences (%)"
    )
}

/// Renders one Table 2 row.
pub fn table2_row(report: &CampaignReport) -> String {
    let r = &report.row;
    format!(
        "{:<34} {:>8} {:>8} {:>8} {:>10} ({:.2}%)",
        r.label,
        r.tested_instructions,
        r.interpreter_paths,
        r.curated_paths,
        r.differences,
        r.difference_percent()
    )
}

/// Renders the Table 3 defect-family summary over several reports.
///
/// Causes are de-duplicated by (category, instruction family): a
/// static-type-prediction gap on `+` is one defect cause even when
/// three compiler tiers exhibit it, matching how the paper counts "a
/// defect only once regardless of how many execution paths it lead to
/// a failure".
pub fn table3(reports: &[CampaignReport]) -> String {
    let mut all_causes: Vec<_> = reports
        .iter()
        .flat_map(|r| r.causes())
        .map(|mut c| {
            c.compiler = std::borrow::Cow::Borrowed("");
            c
        })
        .collect();
    all_causes.sort();
    all_causes.dedup();
    let mut out = String::new();
    out.push_str(&format!("{:<34} {:>8}\n", "Family", "# Cases"));
    let mut total = 0;
    for cat in DefectCategory::ALL {
        let n = all_causes.iter().filter(|c| c.category == cat).count();
        total += n;
        out.push_str(&format!("{:<34} {:>8}\n", cat.name(), n));
    }
    out.push_str(&format!("{:<34} {:>8}\n", "Total", total));
    out
}

/// Summary statistics of a series of numbers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub median: f64,
    /// Sum.
    pub total: f64,
}

/// Computes summary statistics; `None` for empty input.
pub fn stats(values: impl IntoIterator<Item = f64>) -> Option<Stats> {
    let mut v: Vec<f64> = values.into_iter().collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total: f64 = v.iter().sum();
    Some(Stats {
        min: v[0],
        max: *v.last().unwrap(),
        mean: total / v.len() as f64,
        median: v[v.len() / 2],
        total,
    })
}

/// Figure 5-style summary: paths-per-instruction distribution.
pub fn figure5_summary(samples: &[TimingSample]) -> String {
    let render = |label: &str, pick: bool| -> String {
        let s = stats(
            samples
                .iter()
                .filter(|t| t.is_native == pick)
                .map(|t| t.paths as f64),
        );
        match s {
            Some(s) => format!(
                "{label:<14} min {:>5.1}  median {:>5.1}  mean {:>5.1}  max {:>5.1}",
                s.min, s.median, s.mean, s.max
            ),
            None => format!("{label:<14} (no samples)"),
        }
    };
    format!("{}\n{}", render("Bytecode", false), render("Native Method", true))
}

/// Figure 6-style summary: exploration time per instruction kind.
pub fn figure6_summary(samples: &[TimingSample]) -> String {
    let render = |label: &str, pick: bool| -> String {
        let s = stats(
            samples
                .iter()
                .filter(|t| t.is_native == pick)
                .map(|t| t.elapsed.as_secs_f64() * 1000.0),
        );
        match s {
            Some(s) => format!(
                "{label:<14} min {:>8.2}ms  median {:>8.2}ms  mean {:>8.2}ms  max {:>8.2}ms  total {:>9.1}ms",
                s.min, s.median, s.mean, s.max, s.total
            ),
            None => format!("{label:<14} (no samples)"),
        }
    };
    format!("{}\n{}", render("Bytecode", false), render("Native Method", true))
}

/// An ASCII log-scale histogram for figure-style dot plots.
pub fn ascii_histogram(values: &[f64], buckets: usize, width: usize) -> String {
    if values.is_empty() || buckets == 0 {
        return String::new();
    }
    let logs: Vec<f64> = values.iter().map(|v| v.max(1e-3).log10()).collect();
    let (lo, hi) = logs
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &x| (l.min(x), h.max(x)));
    let span = (hi - lo).max(1e-9);
    let mut counts = vec![0usize; buckets];
    for l in &logs {
        let b = (((l - lo) / span) * (buckets as f64 - 1.0)).round() as usize;
        counts[b.min(buckets - 1)] += 1;
    }
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (i, &c) in counts.iter().enumerate() {
        let from = 10f64.powf(lo + span * i as f64 / buckets as f64);
        let bar = "#".repeat(c * width / max);
        out.push_str(&format!("{from:>10.2} | {bar} {c}\n"));
    }
    out
}

/// Renders the observability data of a full campaign run as a JSON
/// document: the aggregate metrics plus one entry per Table 2 row.
/// The harness binaries write this next to their textual reports.
pub fn metrics_json(reports: &[CampaignReport]) -> String {
    let total = crate::campaign::aggregate_metrics(reports);
    let mut out = String::from("{\n  \"total\":");
    out.push_str(&total.to_json());
    out.push_str(",\n  \"rows\":[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"label\":");
        out.push_str(&json_string(&r.row.label));
        out.push_str(",\"metrics\":");
        out.push_str(&r.metrics.to_json());
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Escapes a string as a JSON literal (the small subset our labels
/// need: quotes, backslashes and control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn stats_basics() {
        let s = stats([1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.total, 10.0);
        assert!(stats(std::iter::empty()).is_none());
    }

    #[test]
    fn figure_summaries_render() {
        let sample = |label: &str, is_native: bool, ms: u64, paths: usize| TimingSample {
            label: label.into(),
            is_native,
            elapsed: Duration::from_millis(ms),
            paths,
            stages: Default::default(),
            cache_hit: false,
            corpus_hit: None,
        };
        let samples = vec![sample("Add", false, 3, 7), sample("primitiveAdd", true, 9, 5)];
        let f5 = figure5_summary(&samples);
        assert!(f5.contains("Bytecode"));
        assert!(f5.contains("Native Method"));
        let f6 = figure6_summary(&samples);
        assert!(f6.contains("ms"));
    }

    #[test]
    fn histogram_renders_buckets() {
        let h = ascii_histogram(&[1.0, 10.0, 100.0, 100.0], 4, 20);
        assert_eq!(h.lines().count(), 4);
        assert!(h.contains('#'));
    }
}
