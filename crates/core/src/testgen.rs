//! Generated unit tests (§5 / §6: "our approach produces reproducible
//! tests that exercise both the interpreter and JIT compilers").
//!
//! One exploration pass turns every curated path into a persistent,
//! individually re-runnable unit test: the test carries its solver
//! model (the concrete frame recipe), its instruction, target compiler
//! and ISA, so it can be replayed at any time without re-running the
//! concolic engine — the "results of the concolic exploration can be
//! cached and reused multiple times" point of §5.4.

use std::sync::Arc;

use igjit_bytecode::instruction_catalog;
use igjit_concolic::{AbstractState, Explorer, InstrUnderTest};
use igjit_difftest::{
    compare_runs, run_oracle, CompiledRun, Target, Verdict,
};
use igjit_heap::ObjectMemory;
use igjit_interp::native_catalog;
use igjit_machine::Isa;
use igjit_solver::Model;

/// One reproducible differential unit test.
#[derive(Clone, Debug)]
pub struct GeneratedTest {
    /// Stable test name, e.g. `bc_Add_path3_StackToRegister_x86`.
    pub name: String,
    /// The instruction under test.
    pub instruction: InstrUnderTest,
    /// The compiler under test.
    pub target: Target,
    /// The ISA the compiled half runs on.
    pub isa: Isa,
    /// The frame recipe (solver model) — the cached concolic result.
    pub model: Model,
    /// The exploration's variable registry, shared per instruction.
    pub state: Arc<AbstractState>,
    /// Interpreter exit of this path, as recorded at generation time.
    pub expected_exit: String,
}

/// The outcome of replaying one generated test.
#[derive(Clone, Debug, PartialEq)]
pub enum TestResult {
    /// Interpreter and compiled code agree.
    Pass,
    /// They diverge (the detail names the difference).
    Fail(String),
    /// The path is an expected failure (invalid frame/memory) and was
    /// skipped, per §3.4.
    Skipped,
}

impl GeneratedTest {
    /// Replays the test: fresh frames, fresh heaps, both engines.
    pub fn run(&self) -> TestResult {
        let oracle = run_oracle(&self.state, &self.model, self.instruction);
        if !oracle.witness_errors.is_empty() {
            return TestResult::Fail(format!(
                "unrealizable witness: {}",
                oracle.witness_errors[0]
            ));
        }
        let (interp_exit, interp_mem, var_oops) = (oracle.exit, oracle.mem, oracle.var_oops);
        if !interp_exit.is_testable() {
            return TestResult::Skipped;
        }
        let mut st = (*self.state).clone();
        let mut mem = ObjectMemory::new();
        let mat = igjit_concolic::materialize_frame(&mut st, &self.model, &mut mem);
        let frame = igjit_difftest::concrete_frame(&mat.frame);
        let kind = match self.target {
            Target::NativeMethods | Target::MetaCompiled => None,
            Target::Bytecode(k) => Some(k),
        };
        if self.target == Target::MetaCompiled {
            // The meta tier replays through its own runner (partial
            // evaluation + trampoline fallback); totality means this
            // never refuses.
            let (compiled, compiled_mem, _counts) = igjit_difftest::run_meta_for_instr(
                self.isa, self.instruction, &frame, mem, true,
            );
            return match compare_runs(&interp_exit, &interp_mem, &compiled, &compiled_mem, &var_oops)
            {
                Verdict::Agree => TestResult::Pass,
                Verdict::Difference(d) => TestResult::Fail(d.detail),
            };
        }
        let (compiled, compiled_mem): (CompiledRun, ObjectMemory) = match self.instruction {
            InstrUnderTest::Bytecode(i) => igjit_difftest::run_compiled_bytecode(
                kind.expect("bytecode test has a tier"),
                self.isa,
                i,
                &frame,
                mem,
                (i.stack_arity() as usize).saturating_sub(1),
            ),
            InstrUnderTest::Native(id) => {
                let rcvr_args = {
                    let argc = igjit_interp::native_spec(id).map(|s| s.argc).unwrap_or(0) as usize;
                    let depth = frame.stack.len();
                    if depth < argc + 1 {
                        None
                    } else {
                        Some((frame.stack[depth - 1 - argc], frame.stack[depth - argc..].to_vec()))
                    }
                };
                match rcvr_args {
                    Some((receiver, args)) => igjit_difftest::run_compiled_native(
                        self.isa, id, receiver, &args, mem,
                    ),
                    None => return TestResult::Skipped,
                }
            }
        };
        match compare_runs(&interp_exit, &interp_mem, &compiled, &compiled_mem, &var_oops) {
            Verdict::Agree => TestResult::Pass,
            Verdict::Difference(d) => TestResult::Fail(d.detail),
        }
    }
}

/// A persistent suite of generated tests.
#[derive(Clone, Debug, Default)]
pub struct GeneratedSuite {
    /// The tests, in generation order.
    pub tests: Vec<GeneratedTest>,
}

/// Summary of replaying a suite.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SuiteReport {
    /// Tests whose engines agree.
    pub passed: usize,
    /// Tests whose engines diverge (found defects).
    pub failed: usize,
    /// Expected-failure paths skipped by the runner.
    pub skipped: usize,
}

impl GeneratedSuite {
    /// Generates the tests for one instruction against one target, on
    /// the given ISAs — one test per curated path per ISA.
    pub fn generate_for(
        instr: InstrUnderTest,
        target: Target,
        isas: &[Isa],
    ) -> GeneratedSuite {
        let exploration = Explorer::new().explore(instr);
        let state = Arc::new(exploration.state.clone());
        let mut tests = Vec::new();
        let label: std::borrow::Cow<'static, str> = match instr {
            InstrUnderTest::Bytecode(i) => format!("bc_{i:?}").into(),
            InstrUnderTest::Native(id) => match igjit_interp::native_spec(id) {
                // The spec table is `'static`; borrow the name
                // instead of cloning it once per generated suite.
                Some(s) => s.name.as_str().into(),
                None => format!("prim{}", id.0).into(),
            },
        };
        let tier = match target {
            Target::NativeMethods => "template".to_string(),
            Target::Bytecode(k) => format!("{k:?}"),
            Target::MetaCompiled => "Meta".to_string(),
        };
        for (pi, path) in exploration.curated_paths().iter().enumerate() {
            let exit = path
                .outcome
                .exit_condition()
                .map(|e| format!("{e:?}"))
                .unwrap_or_else(|| "unsupported".into());
            for &isa in isas {
                tests.push(GeneratedTest {
                    name: format!("{label}_path{pi}_{tier}_{}", isa.name()),
                    instruction: instr,
                    target,
                    isa,
                    model: path.model.clone(),
                    state: Arc::clone(&state),
                    expected_exit: exit.clone(),
                });
            }
        }
        GeneratedSuite { tests }
    }

    /// Generates the paper's full battery: every native method against
    /// the template compiler and every bytecode against the three
    /// tiers, on both ISAs — the ">4.5K tests" of §5.
    pub fn generate_full(isas: &[Isa]) -> GeneratedSuite {
        let mut suite = GeneratedSuite::default();
        for spec in native_catalog() {
            suite.extend(GeneratedSuite::generate_for(
                InstrUnderTest::Native(spec.id),
                Target::NativeMethods,
                isas,
            ));
        }
        for kind in igjit_jit::CompilerKind::ALL {
            for spec in instruction_catalog() {
                suite.extend(GeneratedSuite::generate_for(
                    InstrUnderTest::Bytecode(spec.instruction),
                    Target::Bytecode(kind),
                    isas,
                ));
            }
        }
        suite
    }

    /// Appends another suite.
    pub fn extend(&mut self, other: GeneratedSuite) {
        self.tests.extend(other.tests);
    }

    /// Number of tests.
    pub fn len(&self) -> usize {
        self.tests.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }

    /// Replays every test.
    pub fn run(&self) -> SuiteReport {
        let mut report = SuiteReport::default();
        for t in &self.tests {
            match t.run() {
                TestResult::Pass => report.passed += 1,
                TestResult::Fail(_) => report.failed += 1,
                TestResult::Skipped => report.skipped += 1,
            }
        }
        report
    }

    /// A human-readable manifest (one line per test).
    pub fn manifest(&self) -> String {
        let mut out = String::new();
        for t in &self.tests {
            out.push_str(&format!("{:<56} expected: {}\n", t.name, t.expected_exit));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igjit_bytecode::Instruction;
    use igjit_interp::NativeMethodId;
    use igjit_jit::CompilerKind;

    #[test]
    fn generated_add_tests_replay() {
        let suite = GeneratedSuite::generate_for(
            InstrUnderTest::Bytecode(Instruction::Add),
            Target::Bytecode(CompilerKind::StackToRegister),
            &[Isa::X86ish, Isa::Arm32ish],
        );
        // One test per curated path per ISA.
        assert!(suite.len() >= 10, "{}", suite.len());
        let report = suite.run();
        assert!(report.passed > 0);
        // Exactly the float fast path fails, on both ISAs.
        assert_eq!(report.failed, 2, "{report:?}");
        assert!(report.skipped > 0, "invalid-frame paths are skipped");
    }

    #[test]
    fn generated_native_tests_replay() {
        let suite = GeneratedSuite::generate_for(
            InstrUnderTest::Native(NativeMethodId(1)),
            Target::NativeMethods,
            &[Isa::X86ish],
        );
        let report = suite.run();
        assert_eq!(report.failed, 0, "primitiveAdd has no defect");
        assert!(report.passed >= 3);
    }

    #[test]
    fn generated_ffi_tests_fail_as_defects() {
        let suite = GeneratedSuite::generate_for(
            InstrUnderTest::Native(NativeMethodId(136)),
            Target::NativeMethods,
            &[Isa::X86ish],
        );
        let report = suite.run();
        assert!(report.failed > 0, "missing functionality must fail: {report:?}");
        assert_eq!(report.passed, 0);
    }

    #[test]
    fn manifest_lists_every_test() {
        let suite = GeneratedSuite::generate_for(
            InstrUnderTest::Bytecode(Instruction::Pop),
            Target::Bytecode(CompilerKind::SimpleStackBased),
            &[Isa::X86ish],
        );
        let manifest = suite.manifest();
        assert_eq!(manifest.lines().count(), suite.len());
        assert!(manifest.contains("bc_Pop_path0"));
    }
}
