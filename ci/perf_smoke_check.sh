#!/usr/bin/env bash
# Perf-smoke drift check.
#
# Compares the latest BENCH_table2.json record (appended by the table2
# harness) and the testgen output against ci/perf_expectations.json.
# The campaign is deterministic, so any drift in the Table 2 totals or
# the generated-test count means a behaviour change slipped into a
# perf-motivated PR — exactly what this check exists to catch.
#
# Usage: ci/perf_smoke_check.sh [BENCH_table2.json] [testgen-output.txt]
set -euo pipefail

bench="${1:-BENCH_table2.json}"
testgen_out="${2:-testgen.out}"
expect="$(dirname "$0")/perf_expectations.json"

for f in "$bench" "$testgen_out" "$expect"; do
    if [ ! -f "$f" ]; then
        echo "perf-smoke: missing $f" >&2
        exit 1
    fi
done

python3 - "$bench" "$testgen_out" "$expect" <<'PY'
import json
import re
import sys

bench_path, testgen_path, expect_path = sys.argv[1:4]
with open(expect_path) as f:
    expect = json.load(f)

# BENCH_table2.json is JSON Lines; the last record is this run.
with open(bench_path) as f:
    records = [json.loads(line) for line in f if line.strip()]
if not records:
    sys.exit(f"perf-smoke: {bench_path} holds no records")
table2 = records[-1]["table2"]

with open(testgen_path) as f:
    testgen = f.read()
m = re.search(r"generated (\d+) tests", testgen)
if not m:
    sys.exit(f"perf-smoke: no 'generated N tests' line in {testgen_path}")
generated = int(m.group(1))

drifted = []
for key in ("tested_instructions", "interpreter_paths", "curated_paths", "differences"):
    if table2[key] != expect[key]:
        drifted.append(f"{key}: expected {expect[key]}, got {table2[key]}")
if generated != expect["generated_tests"]:
    drifted.append(f"generated_tests: expected {expect['generated_tests']}, got {generated}")

if drifted:
    print("perf-smoke: campaign outputs drifted from ci/perf_expectations.json:")
    for line in drifted:
        print(f"  {line}")
    print("If the drift is intentional, update ci/perf_expectations.json in the same PR.")
    sys.exit(1)

metrics = records[-1]["metrics"]
stages = metrics["stages_ms"]
print(
    "perf-smoke: totals match expectations "
    f"({table2['differences']} differences, {generated} generated tests); "
    f"wall {metrics['wall_clock_ms']:.0f} ms, explore {stages['explore']:.0f} ms, "
    f"compile cache hit rate {metrics['compile_cache']['hit_rate']:.2f}"
)
PY
