#!/usr/bin/env bash
# Perf-smoke drift check.
#
# Compares the latest BENCH_table2.json records (appended by the table2
# harness) and the testgen output against ci/perf_expectations.json.
# The campaign is deterministic, so any drift in the Table 2 totals or
# the generated-test count means a behaviour change slipped into a
# perf-motivated PR — exactly what this check exists to catch.
#
# The CI workflow appends seven 1-thread records — all knobs on, heap
# snapshots off, predecode off, family sharing off, interpreter
# predecode off, meta tier off, solver trail off — each tagged with its
# `knobs`. Records
# written before the knobs tag existed are ignored whenever tagged
# ones are present (their classification by side-effect counters was
# ambiguous). Beyond the row totals, the check enforces the perf
# invariants of the engine:
#
#   * knob identity — every record in the window, whatever its knobs,
#     must match the expected rows: neither heap snapshots, predecoded
#     fetch (machine- or interpreter-side), nor family-shared
#     exploration may change anything observable;
#   * materialize speedup — the snapshot-on materialize stage must be
#     at least 1.3x faster than the snapshot-off one (engine v6's
#     cheaper heap construction — template class tables, vector live
#     sets — sped the rebuild-per-run path up too, shrinking the
#     snapshot advantage from its original 2x);
#   * honest stage accounting — at 1 thread, the per-stage sum
#     (including the `other` bucket) must land within 10% of the
#     measured wall clock;
#   * sub-stage layout — the stage buckets must be exactly the
#     expected set (a silently added or dropped bucket breaks every
#     downstream consumer of the metrics);
#   * residual budget — with every engine knob on, the unattributed
#     `other` bucket must stay within 15% of wall clock (engine v5's
#     sub-stage attribution contract);
#   * explore budget — with every engine knob on at 1 thread, the
#     explore stage must stay under `explore_budget_ms` (engine v8's
#     predecoded walk plus batched probe solves, tightened by engine
#     v10's trail-based solver);
#   * solver-trail identity — the trail-based solver (engine v10) is a
#     storage strategy, not a different solver: the trail-off rows must
#     equal the all-on rows key for key, the all-on record must show
#     trail activity, and the trail-off record none;
#   * explore sub-slices — the `walk_run` and `probe_solve` buckets
#     re-attribute time already inside `explore` (they are excluded
#     from the stage total), so their sum must never exceed the
#     explore stage itself;
#   * tier-5 additivity — the meta tier must be purely additive: the
#     tier5-off record must match the committed `tier5_off` totals
#     (the engine-v8 table), and the tier may not add differences;
#   * mutation kill rate — when a full-catalog mutation record
#     (`mutants_run == 44`) is available, its kill count must stay at
#     or above the committed floor (35/44). CI's pinned smoke set runs
#     8 mutants, so the gate notes a skip there and bites on
#     bench-time full-matrix records.
#
# Usage: ci/perf_smoke_check.sh [BENCH_table2.json] [testgen-output.txt] [BENCH_mutation.json]
set -euo pipefail

bench="${1:-BENCH_table2.json}"
testgen_out="${2:-testgen.out}"
mutation="${3:-BENCH_mutation.json}"
expect="$(dirname "$0")/perf_expectations.json"

for f in "$bench" "$testgen_out" "$expect"; do
    if [ ! -f "$f" ]; then
        echo "perf-smoke: missing $f" >&2
        exit 1
    fi
done

python3 - "$bench" "$testgen_out" "$expect" "$mutation" <<'PY'
import json
import os
import re
import sys

bench_path, testgen_path, expect_path, mutation_path = sys.argv[1:5]
with open(expect_path) as f:
    expect = json.load(f)

# BENCH_table2.json is JSON Lines; the trailing records are this CI
# run. Classify by the record's `knobs` tag; fall back to the snapshot
# side-effect counters only for windows of purely legacy records.
with open(bench_path) as f:
    records = [json.loads(line) for line in f if line.strip()]
if not records:
    sys.exit(f"perf-smoke: {bench_path} holds no records")

# Corpus-backed runs (engine v7) have their own pairwise check
# (ci/corpus_smoke_check.sh) and their warm halves replay instead of
# measuring the pipeline, so they never participate in the knob
# classification below.
records = [rec for rec in records if not rec.get("knobs", {}).get("corpus", False)]
if not records:
    sys.exit(f"perf-smoke: {bench_path} holds only corpus-backed records")

window = records[-10:]
tagged = [rec for rec in window if "knobs" in rec]
if tagged:
    window = tagged

    def classify(rec):
        k = rec["knobs"]
        if not k.get("heap_snapshot", True):
            return "snapshot-off"
        if not k.get("predecode", True):
            return "predecode-off"
        if not k.get("family_share", True):
            return "family-off"
        if not k.get("interp_predecode", True):
            return "interp-predecode-off"
        if not k.get("tier5", True):
            return "tier5-off"
        if not k.get("solver_trail", True):
            return "solver-trail-off"
        return "all-on"
else:

    def classify(rec):
        seals = rec["metrics"].get("snapshot", {}).get("seals", 0)
        return "all-on" if seals > 0 else "snapshot-off"

by_kind = {}
for rec in window:
    by_kind[classify(rec)] = rec  # later records win
rec_on = by_kind.get("all-on")
rec_off = by_kind.get("snapshot-off")
rec_pre_off = by_kind.get("predecode-off")
rec_fam_off = by_kind.get("family-off")
rec_interp_off = by_kind.get("interp-predecode-off")
rec_t5_off = by_kind.get("tier5-off")
rec_trail_off = by_kind.get("solver-trail-off")

with open(testgen_path) as f:
    testgen = f.read()
m = re.search(r"generated (\d+) tests", testgen)
if not m:
    sys.exit(f"perf-smoke: no 'generated N tests' line in {testgen_path}")
generated = int(m.group(1))

drifted = []
labelled = [
    ("all-on", rec_on),
    ("snapshot-off", rec_off),
    ("predecode-off", rec_pre_off),
    ("family-off", rec_fam_off),
    ("interp-predecode-off", rec_interp_off),
    ("tier5-off", rec_t5_off),
    ("solver-trail-off", rec_trail_off),
]
for label, rec in labelled:
    if rec is None:
        continue
    # The tier5-off run drops the fifth row, so it pins its own totals
    # (the engine-v8 table); every other record includes the meta row.
    want = expect["tier5_off"] if label == "tier5-off" else expect
    for key in ("tested_instructions", "interpreter_paths", "curated_paths", "differences"):
        if rec["table2"][key] != want[key]:
            drifted.append(
                f"{key} ({label}): expected {want[key]}, got {rec['table2'][key]}"
            )
if all(rec is None for _, rec in labelled):
    sys.exit("perf-smoke: no usable records")
if generated != expect["generated_tests"]:
    drifted.append(f"generated_tests: expected {expect['generated_tests']}, got {generated}")

if drifted:
    print("perf-smoke: campaign outputs drifted from ci/perf_expectations.json:")
    for line in drifted:
        print(f"  {line}")
    print("If the drift is intentional, update ci/perf_expectations.json in the same PR.")
    sys.exit(1)

# Sub-stage layout: the stage buckets are part of the metrics contract.
layout = expect.get("stage_layout")
if layout:
    for label, rec in labelled:
        if rec is None:
            continue
        got = sorted(k for k in rec["metrics"]["stages_ms"] if k != "total")
        if got != sorted(layout):
            sys.exit(
                f"perf-smoke: stage layout drifted ({label}): "
                f"expected {sorted(layout)}, got {got}"
            )

# Materialize-stage speedup: the snapshot replay path must cut the
# stage at least 1.3x relative to rebuild-per-run. (Originally 2x;
# engine v6 made fresh heap construction itself much cheaper, which
# narrowed the gap by speeding up the snapshot-off baseline.)
if rec_on is not None and rec_off is not None:
    mat_on = rec_on["metrics"]["stages_ms"]["materialize"]
    mat_off = rec_off["metrics"]["stages_ms"]["materialize"]
    ratio = mat_off / mat_on if mat_on > 0 else float("inf")
    if ratio < 1.3:
        sys.exit(
            "perf-smoke: materialize stage speedup regressed: "
            f"snapshot-on {mat_on:.1f} ms vs snapshot-off {mat_off:.1f} ms "
            f"({ratio:.2f}x, expected >= 1.3x)"
        )
else:
    ratio = None

# Honest stage accounting: at 1 thread the stage sum (with the
# `other` bucket) must track the wall clock within 10%. The explore
# sub-slices (`walk_run`, `probe_solve`) re-attribute time already
# counted in `explore`, so they stay out of the sum.
SUB_SLICES = {"walk_run", "probe_solve"}
for label, rec in labelled:
    if rec is None or rec["metrics"].get("threads") != 1:
        continue
    stages = rec["metrics"]["stages_ms"]
    total = stages.get(
        "total", sum(v for k, v in stages.items() if k != "total" and k not in SUB_SLICES)
    )
    wall = rec["metrics"]["wall_clock_ms"]
    if wall > 0 and abs(total - wall) > 0.10 * wall:
        sys.exit(
            f"perf-smoke: stage accounting drifted ({label}): stages sum "
            f"{total:.1f} ms vs wall {wall:.1f} ms (>10% apart)"
        )

# Residual budget: with every engine knob on at 1 thread, the
# unattributed `other` bucket stays within 15% of wall clock.
if rec_on is not None and rec_on["metrics"].get("threads") == 1:
    other = rec_on["metrics"]["stages_ms"].get("other", 0.0)
    wall = rec_on["metrics"]["wall_clock_ms"]
    if wall > 0 and other > 0.15 * wall:
        sys.exit(
            "perf-smoke: residual `other` bucket exceeds its budget: "
            f"{other:.1f} ms of {wall:.1f} ms wall "
            f"({100 * other / wall:.1f}%, expected <= 15%)"
        )

# Family sharing must be purely an optimization: the family-off rows
# must equal the all-on rows key for key (stronger than both matching
# the committed expectations — it holds even while expectations are
# being retuned in the same PR).
if rec_on is not None and rec_fam_off is not None:
    for key in ("tested_instructions", "interpreter_paths", "curated_paths", "differences"):
        if rec_fam_off["table2"][key] != rec_on["table2"][key]:
            sys.exit(
                "perf-smoke: family-shared exploration changed campaign rows: "
                f"{key} is {rec_on['table2'][key]} with sharing on "
                f"but {rec_fam_off['table2'][key]} with sharing off"
            )

# Interpreter predecoding must be purely an optimization too: the
# interp-predecode-off rows must equal the all-on rows key for key
# (same rationale as the family check above — holds even while the
# committed expectations are being retuned in the same PR).
if rec_on is not None and rec_interp_off is not None:
    for key in ("tested_instructions", "interpreter_paths", "curated_paths", "differences"):
        if rec_interp_off["table2"][key] != rec_on["table2"][key]:
            sys.exit(
                "perf-smoke: interpreter predecoding changed campaign rows: "
                f"{key} is {rec_on['table2'][key]} with predecoding on "
                f"but {rec_interp_off['table2'][key]} with it off"
            )

# The trail-based solver (engine v10) must be purely an optimization:
# an undo log instead of per-scope store clones cannot change what the
# solver answers, so the trail-off rows must equal the all-on rows key
# for key. The activity counters double-check that the comparison is
# not vacuous — the all-on run really unwound scopes off a trail, the
# trail-off run really cloned.
if rec_on is not None and rec_trail_off is not None:
    for key in ("tested_instructions", "interpreter_paths", "curated_paths", "differences"):
        if rec_trail_off["table2"][key] != rec_on["table2"][key]:
            sys.exit(
                "perf-smoke: the trail-based solver changed campaign rows: "
                f"{key} is {rec_on['table2'][key]} with the trail on "
                f"but {rec_trail_off['table2'][key]} with it off"
            )
    trail_on = rec_on["metrics"].get("trail")
    trail_off = rec_trail_off["metrics"].get("trail")
    if trail_on is not None and trail_on.get("clones_avoided", 0) == 0:
        sys.exit(
            "perf-smoke: the all-on record shows no trail activity — "
            "solver_trail appears to be silently disabled"
        )
    if trail_off is not None and trail_off.get("marks", 0) != 0:
        sys.exit(
            "perf-smoke: the solver-trail-off record took trail marks — "
            "the IGJIT_SOLVER_TRAIL=0 leg is not actually in clone mode"
        )

# Tier-5 additivity: the meta tier appends one row and changes nothing
# else, so the rows shared by both configurations must agree — the
# tier5-off totals can never exceed the all-on totals, and the meta
# row must contribute zero differences (a compiler partially evaluated
# out of the interpreter agrees with the interpreter by construction).
if rec_on is not None and rec_t5_off is not None:
    for key in ("tested_instructions", "interpreter_paths", "curated_paths"):
        if rec_t5_off["table2"][key] > rec_on["table2"][key]:
            sys.exit(
                "perf-smoke: tier5-off totals exceed the all-on totals: "
                f"{key} is {rec_t5_off['table2'][key]} without the meta row "
                f"but {rec_on['table2'][key]} with it"
            )
    if rec_on["table2"]["differences"] != rec_t5_off["table2"]["differences"]:
        sys.exit(
            "perf-smoke: the meta tier changed the difference count: "
            f"{rec_on['table2']['differences']} with tier 5 on "
            f"vs {rec_t5_off['table2']['differences']} with it off"
        )

# Explore sub-slices: walk_run + probe_solve re-attribute explore
# time, so their sum can never exceed the explore stage itself (5%
# slack for timer quantization across many short paths).
for label, rec in labelled:
    if rec is None:
        continue
    stages = rec["metrics"]["stages_ms"]
    if "walk_run" in stages and "probe_solve" in stages:
        sub = stages["walk_run"] + stages["probe_solve"]
        if sub > 1.05 * stages["explore"] + 0.5:
            sys.exit(
                f"perf-smoke: explore sub-slices overflow the stage ({label}): "
                f"walk_run + probe_solve = {sub:.1f} ms "
                f"vs explore {stages['explore']:.1f} ms"
            )

# Explore budget: with every engine knob on at 1 thread, the explore
# stage must stay under its committed budget (engine v8).
explore_budget = expect.get("explore_budget_ms")
if (
    explore_budget is not None
    and rec_on is not None
    and rec_on["metrics"].get("threads") == 1
):
    explore_ms = rec_on["metrics"]["stages_ms"]["explore"]
    if explore_ms > explore_budget:
        sys.exit(
            "perf-smoke: explore stage exceeds its budget: "
            f"{explore_ms:.1f} ms > {explore_budget:.1f} ms at 1 thread"
        )

# Mutation kill-rate trajectory: the harness's bug-finding power over
# the full 44-mutant catalog must not regress below the committed
# floor. Only full-catalog records are meaningful — CI's pinned smoke
# set runs 8 mutants and has its own per-verdict check
# (ci/mutation_smoke_check.sh) — so the gate bites on bench-time
# full-matrix records and notes a skip otherwise.
kill_floor = expect.get("mutation_kill_floor")
full_catalog = expect.get("mutation_full_catalog", 44)
if kill_floor is not None:
    if not os.path.exists(mutation_path):
        print(
            f"perf-smoke: no {mutation_path} — mutation kill-rate gate skipped"
        )
    else:
        with open(mutation_path) as f:
            mrecords = [json.loads(line) for line in f if line.strip()]
        full = [rec for rec in mrecords if rec.get("mutants_run") == full_catalog]
        if not full:
            print(
                "perf-smoke: no full-catalog mutation record "
                f"(mutants_run == {full_catalog}) in {mutation_path} — "
                "kill-rate gate skipped (CI's pinned smoke set runs 8)"
            )
        else:
            rec_m = full[-1]
            killed = sum(1 for m in rec_m.get("mutants", []) if m.get("killed"))
            if killed < kill_floor:
                sys.exit(
                    "perf-smoke: mutation kill rate regressed: "
                    f"{killed}/{full_catalog} killed, expected >= {kill_floor}"
                )
            print(
                f"perf-smoke: mutation kill rate {killed}/{full_catalog} "
                f"(floor {kill_floor})"
            )

rec = (rec_on or rec_off or rec_pre_off or rec_fam_off or rec_interp_off or rec_t5_off
       or rec_trail_off)
metrics = rec["metrics"]
stages = metrics["stages_ms"]
speedup = f", materialize speedup {ratio:.2f}x" if ratio is not None else ""
print(
    "perf-smoke: totals match expectations "
    f"({rec['table2']['differences']} differences, {generated} generated tests); "
    f"wall {metrics['wall_clock_ms']:.0f} ms, explore {stages['explore']:.0f} ms, "
    f"compile cache hit rate {metrics['compile_cache']['hit_rate']:.2f}{speedup}"
)
PY
