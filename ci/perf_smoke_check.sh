#!/usr/bin/env bash
# Perf-smoke drift check.
#
# Compares the latest BENCH_table2.json records (appended by the table2
# harness) and the testgen output against ci/perf_expectations.json.
# The campaign is deterministic, so any drift in the Table 2 totals or
# the generated-test count means a behaviour change slipped into a
# perf-motivated PR — exactly what this check exists to catch.
#
# Beyond the row totals, the check enforces three perf invariants on
# the recent records:
#
#   * snapshot on/off identity — when both a heap-snapshot-on and a
#     heap-snapshot-off record are present (the CI workflow produces
#     one of each), both must match the expected rows, proving the
#     replay path changes nothing observable;
#   * materialize speedup — the snapshot-on materialize stage must be
#     at least 2x faster than the snapshot-off one;
#   * honest stage accounting — at 1 thread, the per-stage sum
#     (including the `other` bucket) must land within 10% of the
#     measured wall clock.
#
# Usage: ci/perf_smoke_check.sh [BENCH_table2.json] [testgen-output.txt]
set -euo pipefail

bench="${1:-BENCH_table2.json}"
testgen_out="${2:-testgen.out}"
expect="$(dirname "$0")/perf_expectations.json"

for f in "$bench" "$testgen_out" "$expect"; do
    if [ ! -f "$f" ]; then
        echo "perf-smoke: missing $f" >&2
        exit 1
    fi
done

python3 - "$bench" "$testgen_out" "$expect" <<'PY'
import json
import re
import sys

bench_path, testgen_path, expect_path = sys.argv[1:4]
with open(expect_path) as f:
    expect = json.load(f)

# BENCH_table2.json is JSON Lines; the trailing records are this CI
# run (snapshot-on first, snapshot-off second when both were run).
with open(bench_path) as f:
    records = [json.loads(line) for line in f if line.strip()]
if not records:
    sys.exit(f"perf-smoke: {bench_path} holds no records")


def snapshot_on(rec):
    return rec["metrics"].get("snapshot", {}).get("seals", 0) > 0


rec_on = rec_off = None
for rec in records[-4:]:
    if snapshot_on(rec):
        rec_on = rec
    else:
        rec_off = rec

with open(testgen_path) as f:
    testgen = f.read()
m = re.search(r"generated (\d+) tests", testgen)
if not m:
    sys.exit(f"perf-smoke: no 'generated N tests' line in {testgen_path}")
generated = int(m.group(1))

drifted = []
for label, rec in (("snapshot-on", rec_on), ("snapshot-off", rec_off)):
    if rec is None:
        continue
    for key in ("tested_instructions", "interpreter_paths", "curated_paths", "differences"):
        if rec["table2"][key] != expect[key]:
            drifted.append(
                f"{key} ({label}): expected {expect[key]}, got {rec['table2'][key]}"
            )
if rec_on is None and rec_off is None:
    sys.exit("perf-smoke: no usable records")
if generated != expect["generated_tests"]:
    drifted.append(f"generated_tests: expected {expect['generated_tests']}, got {generated}")

if drifted:
    print("perf-smoke: campaign outputs drifted from ci/perf_expectations.json:")
    for line in drifted:
        print(f"  {line}")
    print("If the drift is intentional, update ci/perf_expectations.json in the same PR.")
    sys.exit(1)

# Materialize-stage speedup: the snapshot replay path must cut the
# stage at least 2x relative to rebuild-per-run.
if rec_on is not None and rec_off is not None:
    mat_on = rec_on["metrics"]["stages_ms"]["materialize"]
    mat_off = rec_off["metrics"]["stages_ms"]["materialize"]
    ratio = mat_off / mat_on if mat_on > 0 else float("inf")
    if ratio < 2.0:
        sys.exit(
            "perf-smoke: materialize stage speedup regressed: "
            f"snapshot-on {mat_on:.1f} ms vs snapshot-off {mat_off:.1f} ms "
            f"({ratio:.2f}x, expected >= 2x)"
        )
else:
    ratio = None

# Honest stage accounting: at 1 thread the stage sum (with the
# `other` bucket) must track the wall clock within 10%.
for label, rec in (("snapshot-on", rec_on), ("snapshot-off", rec_off)):
    if rec is None or rec["metrics"].get("threads") != 1:
        continue
    stages = rec["metrics"]["stages_ms"]
    total = stages.get("total", sum(v for k, v in stages.items() if k != "total"))
    wall = rec["metrics"]["wall_clock_ms"]
    if wall > 0 and abs(total - wall) > 0.10 * wall:
        sys.exit(
            f"perf-smoke: stage accounting drifted ({label}): stages sum "
            f"{total:.1f} ms vs wall {wall:.1f} ms (>10% apart)"
        )

rec = rec_on or rec_off
metrics = rec["metrics"]
stages = metrics["stages_ms"]
speedup = f", materialize speedup {ratio:.2f}x" if ratio is not None else ""
print(
    "perf-smoke: totals match expectations "
    f"({rec['table2']['differences']} differences, {generated} generated tests); "
    f"wall {metrics['wall_clock_ms']:.0f} ms, explore {stages['explore']:.0f} ms, "
    f"compile cache hit rate {metrics['compile_cache']['hit_rate']:.2f}{speedup}"
)
PY
