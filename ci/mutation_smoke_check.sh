#!/usr/bin/env bash
# Mutation-smoke drift check.
#
# Compares the latest BENCH_mutation.json record (appended by the
# mutation_campaign driver) against ci/mutation_expectations.json. The
# pinned set is eight mutants spanning all five injected JIT layers:
# seven the harness demonstrably kills plus one designed-equivalent
# survivor. Two regressions fail the check:
#
#   * a kill/survive flip — a pinned killable mutant surviving means
#     the harness lost bug-finding power (a new blind spot); a pinned
#     survivor being "killed" means nondeterminism or an unsound
#     comparison crept into the driver;
#   * a planted-defect regression — the record's disarmed-baseline
#     Table 2 totals drifting from the expected rows means real
#     defects were gained/lost while every mutant was disarmed.
#
# Usage: ci/mutation_smoke_check.sh [BENCH_mutation.json]
set -euo pipefail

bench="${1:-BENCH_mutation.json}"
expect="$(dirname "$0")/mutation_expectations.json"

for f in "$bench" "$expect"; do
    if [ ! -f "$f" ]; then
        echo "mutation-smoke: missing $f" >&2
        exit 1
    fi
done

python3 - "$bench" "$expect" <<'PY'
import json
import sys

bench_path, expect_path = sys.argv[1:3]
with open(expect_path) as f:
    expect = json.load(f)

# BENCH_mutation.json is JSON Lines; the last record is this CI run.
with open(bench_path) as f:
    records = [json.loads(line) for line in f if line.strip()]
if not records:
    sys.exit(f"mutation-smoke: {bench_path} holds no records")
rec = records[-1]

failures = []

# Planted-defect regression: the disarmed baseline must still produce
# exactly the pinned Table 2 totals.
for key, want in expect["baseline"].items():
    got = rec.get("baseline", {}).get(key)
    if got != want:
        failures.append(f"baseline {key}: expected {want}, got {got}")

# Kill/survive flips on the pinned mutant set.
verdicts = {m["id"]: m for m in rec.get("mutants", [])}
for pin in expect["mutants"]:
    got = verdicts.get(pin["id"])
    if got is None:
        failures.append(f"mutant {pin['id']} ({pin['name']}): not in the record")
    elif got["killed"] != pin["killed"]:
        want = "killed" if pin["killed"] else "survival (designed equivalent)"
        have = "killed" if got["killed"] else "SURVIVED — new blind spot"
        failures.append(f"mutant {pin['id']} ({pin['name']}): expected {want}, got {have}")

if failures:
    print("mutation-smoke: outputs drifted from ci/mutation_expectations.json:")
    for line in failures:
        print(f"  {line}")
    print("If the drift is intentional, update ci/mutation_expectations.json in the same PR.")
    sys.exit(1)

killed = sum(1 for m in rec["mutants"] if m["killed"])
print(
    "mutation-smoke: all pinned verdicts match "
    f"({killed}/{rec['mutants_run']} killed, "
    f"baseline {rec['baseline']['differences']} differences, "
    f"wall {rec['wall_clock_ms']:.0f} ms)"
)
PY
