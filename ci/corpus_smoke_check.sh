#!/usr/bin/env bash
# Engine v7 corpus smoke: warm replay and process sharding must be
# invisible in every output and the warm path must actually pay off.
#
# Runs the Table 2 harness four times in a scratch directory:
#
#   1. baseline   — no corpus, sequential (the reference rows);
#   2. cold       — fresh corpus file attached (records + saves);
#   3. warm       — same corpus file (replays the saved outcomes);
#   4. sharded    — no corpus, `--jobs 2` (two worker subprocesses
#                   plus the deterministic merge).
#
# and then asserts, via the BENCH_table2.json records the runs append:
#
#   * row identity — all four runs print byte-identical Table 2 rows
#     (a corpus or a shard merge may only ever change the wall clock);
#   * full warm coverage — the warm run serves every instruction from
#     the corpus (hits == tested instructions, misses == 0) while the
#     cold run serves none;
#   * warm payoff — the warm wall clock beats the cold one by at least
#     `warm_speedup_min` from ci/perf_expectations.json;
#   * totals — every run matches the committed Table 2 expectations.
#
# Usage: ci/corpus_smoke_check.sh [--release]
set -euo pipefail

ci_dir="$(cd "$(dirname "$0")" && pwd)"
expect="$ci_dir/perf_expectations.json"

profile=()
if [ "${1:-}" = "--release" ]; then
    profile=(--release)
fi

scratch="$(mktemp -d "${TMPDIR:-/tmp}/igjit-corpus-smoke.XXXXXX")"
trap 'rm -rf "$scratch"' EXIT

# The harness writes table2.metrics.json and appends BENCH_table2.json
# in its cwd, so running from the scratch dir keeps the repo's own
# bench history out of this check (and vice versa).
run_table2() {
    local out="$1"
    shift
    (cd "$scratch" && "$@" > "$out" )
}

table2=(cargo run --quiet "${profile[@]}" --manifest-path "$ci_dir/../Cargo.toml" \
        -p igjit-bench --bin table2 --)

echo "=== corpus-smoke: baseline (no corpus) ==="
IGJIT_THREADS=1 run_table2 baseline.out "${table2[@]}"
echo "=== corpus-smoke: cold run (fresh corpus) ==="
IGJIT_THREADS=1 IGJIT_CORPUS="$scratch/smoke.corpus" run_table2 cold.out "${table2[@]}"
echo "=== corpus-smoke: warm run (saved corpus) ==="
IGJIT_THREADS=1 IGJIT_CORPUS="$scratch/smoke.corpus" run_table2 warm.out "${table2[@]}"
echo "=== corpus-smoke: sharded run (--jobs 2) ==="
IGJIT_THREADS=1 run_table2 jobs.out "${table2[@]}" --jobs 2

# Row identity across all four runs, on the printed table itself.
rows() {
    grep -E "Native Methods|BC Compiler|Meta-Compiled|meta tier coverage|^Total" "$scratch/$1"
}
rows baseline.out > "$scratch/baseline.rows"
for other in cold warm jobs; do
    rows "$other.out" > "$scratch/$other.rows"
    if ! diff -u "$scratch/baseline.rows" "$scratch/$other.rows"; then
        echo "corpus-smoke: $other run printed different Table 2 rows" >&2
        exit 1
    fi
done
echo "corpus-smoke: all four runs print identical Table 2 rows"

python3 - "$scratch/BENCH_table2.json" "$expect" <<'PY'
import json
import sys

bench_path, expect_path = sys.argv[1:3]
with open(expect_path) as f:
    expect = json.load(f)
with open(bench_path) as f:
    records = [json.loads(line) for line in f if line.strip()]
if len(records) != 4:
    sys.exit(f"corpus-smoke: expected 4 bench records, found {len(records)}")
baseline, cold, warm, sharded = records

for label, rec in (("baseline", baseline), ("cold", cold),
                   ("warm", warm), ("sharded", sharded)):
    for key in ("tested_instructions", "interpreter_paths",
                "curated_paths", "differences"):
        if rec["table2"][key] != expect[key]:
            sys.exit(
                f"corpus-smoke: {label} run drifted: {key} expected "
                f"{expect[key]}, got {rec['table2'][key]}"
            )

instructions = expect["tested_instructions"]
cold_corpus = cold["metrics"]["corpus"]
warm_corpus = warm["metrics"]["corpus"]
if cold_corpus["hits"] != 0 or cold_corpus["misses"] != instructions:
    sys.exit(f"corpus-smoke: cold run should miss everything: {cold_corpus}")
if warm_corpus["hits"] != instructions or warm_corpus["misses"] != 0:
    sys.exit(f"corpus-smoke: warm run should replay everything: {warm_corpus}")

floor = expect["warm_speedup_min"]
cold_ms = cold["metrics"]["wall_clock_ms"]
warm_ms = warm["metrics"]["wall_clock_ms"]
speedup = cold_ms / warm_ms if warm_ms > 0 else float("inf")
if speedup < floor:
    sys.exit(
        f"corpus-smoke: warm replay too slow: cold {cold_ms:.1f} ms vs "
        f"warm {warm_ms:.1f} ms ({speedup:.2f}x, expected >= {floor}x)"
    )

print(
    f"corpus-smoke: warm replay {speedup:.1f}x faster "
    f"({cold_ms:.1f} ms cold vs {warm_ms:.1f} ms warm), "
    f"{warm_corpus['hits']}/{instructions} instructions corpus-served, "
    "sharded merge row-identical"
)
PY
