#!/usr/bin/env bash
# Runs the README's three guided examples and asserts they exit 0.
#
# The examples are executable documentation: quickstart is the
# front-door API walkthrough, hunt_defects reproduces the §5.3 defect
# families, cross_isa runs the same instruction on both simulated
# ISAs. Any panic or nonzero exit means the documented entry points
# regressed even if the unit tests still pass.
#
# Usage: ci/run_examples.sh [--release]
set -euo pipefail

profile=()
if [ "${1:-}" = "--release" ]; then
    profile=(--release)
fi

for example in quickstart hunt_defects cross_isa; do
    echo "=== example: $example ==="
    cargo run "${profile[@]}" --example "$example"
    echo "=== example: $example exited 0 ==="
done
echo "all examples passed"
